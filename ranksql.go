// Package ranksql is an embedded, in-memory relational engine with
// first-class support for ranking (top-k) queries, implementing the
// RankSQL system of Li, Chang, Ilyas and Song (SIGMOD 2005):
//
//   - a rank-relational algebra in which order is a logical property of
//     relations alongside membership, with a rank operator µ that
//     evaluates ranking predicates one at a time,
//   - a pipelined, incremental execution model whose cost is proportional
//     to k (rank-scans, rank joins HRJN/NRJN, rank-aware set operations),
//   - a System-R style optimizer that enumerates plans along two
//     dimensions — join order and evaluated ranking predicates — costed
//     with sampling-based cardinality estimation.
//
// Quick start:
//
//	db := ranksql.Open()
//	db.Exec(`CREATE TABLE hotel (name TEXT, price FLOAT)`)
//	db.Exec(`INSERT INTO hotel VALUES ('Grand', 120), ('Budget', 40)`)
//	db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
//		return (200 - args[0].Float()) / 200
//	}, ranksql.WithCost(1))
//	rows, _ := db.Query(`SELECT name FROM hotel ORDER BY cheap(price) LIMIT 1`)
//
// Ranking queries use ORDER BY <scoring function> LIMIT k where the
// scoring function is a sum of (optionally weighted) registered scorer
// calls; larger scores rank first. Arbitrary arithmetic ORDER BY
// expressions are supported as opaque ranking predicates.
//
// A DB is safe for concurrent use: queries run in parallel under a read
// lock while DDL/DML statements serialize under a write lock. Repeated
// query templates are served by an LRU plan cache keyed on (normalized
// SQL, evaluated ranking predicates, k), so only the first execution of a
// template pays for parsing and rank-aware optimization. Statements may
// contain `?` placeholders (in WHERE, LIMIT and INSERT values) bound at
// execution time:
//
//	stmt, _ := db.Prepare(`SELECT name FROM hotel WHERE price < ? ORDER BY cheap(price) LIMIT ?`)
//	rows, _ := stmt.Query(150, 5)
//
// The ranksqld daemon (cmd/ranksqld, internal/server) exposes this API as
// a concurrent HTTP/JSON query service.
package ranksql

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"ranksql/internal/engine"
	"ranksql/internal/exec"
	"ranksql/internal/jsonenc"
	"ranksql/internal/optimizer"
	"ranksql/internal/types"
)

// Value is a scalar query value: NULL, BOOL, INT, FLOAT or TEXT.
type Value struct {
	v types.Value
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.v.IsNull() }

// Bool returns the boolean payload (false for non-bools).
func (v Value) Bool() bool { return v.v.Kind() == types.KindBool && v.v.Bool() }

// Int returns the value as an int64 (0 when not numeric).
func (v Value) Int() int64 { i, _ := v.v.AsInt(); return i }

// Float returns the value as a float64 (0 when not numeric).
func (v Value) Float() float64 { f, _ := v.v.AsFloat(); return f }

// String renders the value.
func (v Value) String() string { return v.v.String() }

// Text returns the string payload ("" for non-strings).
func (v Value) Text() string {
	if v.v.Kind() == types.KindString {
		return v.v.Str()
	}
	return ""
}

// Any converts to a native Go value: nil, bool, int64, float64 or string.
func (v Value) Any() interface{} {
	switch v.v.Kind() {
	case types.KindBool:
		return v.v.Bool()
	case types.KindInt:
		return v.v.Int()
	case types.KindFloat:
		return v.v.Float()
	case types.KindString:
		return v.v.Str()
	default:
		return nil
	}
}

// AppendJSON appends the value's JSON encoding to dst and returns the
// extended slice, byte-identical to json.Marshal(v.Any()). It allocates
// only when dst must grow, making it suitable for pooled encode buffers.
func (v Value) AppendJSON(dst []byte) []byte {
	switch v.v.Kind() {
	case types.KindBool:
		if v.v.Bool() {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case types.KindInt:
		return strconv.AppendInt(dst, v.v.Int(), 10)
	case types.KindFloat:
		return jsonenc.AppendFloat(dst, v.v.Float())
	case types.KindString:
		return jsonenc.AppendString(dst, v.v.Str())
	default:
		return append(dst, "null"...)
	}
}

// ScoreFunc is a user-defined ranking predicate: it maps argument values
// to a score, conventionally in [0, 1] (configurable via WithMax). Larger
// is better. Functions must be deterministic.
type ScoreFunc func(args []Value) float64

// ScorerOption configures a registered scorer.
type ScorerOption func(*engine.Scorer)

// WithCost declares the scorer's per-evaluation cost in abstract units;
// the optimizer schedules expensive predicates later and the executor can
// burn proportional CPU in spin mode. Default 1.
func WithCost(c float64) ScorerOption {
	return func(s *engine.Scorer) { s.Cost = c }
}

// WithMax declares the scorer's maximal possible value, used for
// upper-bound (maximal-possible-score) computation. Default 1.
func WithMax(m float64) ScorerOption {
	return func(s *engine.Scorer) { s.MaxVal = m }
}

// Stats are execution counters for one query.
type Stats struct {
	TuplesScanned int64
	PredEvals     int64
	PredCostUnits float64
	Comparisons   int64
	JoinProbes    int64
	PeakBuffered  int64
	// Materialized counts every tuple admitted into an operator buffer
	// (ranking queues, hash tables, sort materializations) over the whole
	// execution — the cumulative materialization footprint. Unlike
	// PeakBuffered it never shrinks as buffers drain.
	Materialized int64
}

// Rows is a materialized query result.
type Rows struct {
	// Columns are the qualified output column names.
	Columns []string
	rows    [][]types.Value
	// Scores[i] is row i's score under the query's ranking function.
	Scores []float64
	// Stats are the query's execution counters.
	Stats Stats
	// CacheHit reports whether the query reused a cached compiled plan,
	// skipping parse/bind/optimize.
	CacheHit bool
	// K is the effective top-k bound the query ran under (0 = no LIMIT).
	K int
	// Exhausted reports whether the ranked stream ran dry at or before
	// depth Len(): no further rows exist beyond the ones returned. When
	// false (the result holds exactly K rows), re-running with a larger
	// LIMIT could surface more rows — the signal a distributed top-k
	// merge uses to bound a shard's remaining contribution. Always true
	// for unlimited queries.
	Exhausted bool
	// Profiled reports whether this execution carried per-operator wall
	// time: always for EXPLAIN ANALYZE, and on a sampled subset of plain
	// executions (see SetProfileSampling). When set, Operators() includes
	// timing and ExecTree() renders it.
	Profiled bool

	execTree func() string
	tree     exec.TreeSnapshot
	est      []float64
	pos      int
}

// OpProfile is one operator of the executed plan: its position in the
// tree, rows emitted, depth of enumeration (tuples consumed from its
// inputs — the quantity rank-aware operators keep small), and, when the
// execution was Profiled, inclusive wall time and call count.
type OpProfile struct {
	// Depth is the operator's nesting depth (0 = root).
	Depth int
	// Name is the operator label, e.g. "rank_cheap(h.price)".
	Name string
	// Rows is the number of tuples the operator emitted.
	Rows int64
	// DepthK is the number of tuples consumed from the operator's inputs
	// (for leaves: pulled from the base table).
	DepthK int64
	// TimeMS is inclusive wall time in milliseconds (self + children);
	// zero unless the execution was Profiled.
	TimeMS float64
	// Calls counts Open/Next invocations; zero unless Profiled.
	Calls int64
	// EstRows is the optimizer's estimated output cardinality for this
	// node, aligned from the compiled plan on profiled executions; -1 when
	// no estimate is available (unprofiled run, EXPLAIN-less statement, or
	// an executed tree whose shape could not be matched to the plan).
	// Rows against EstRows is the node's estimate drift.
	EstRows float64
}

// Operators returns the executed plan's per-operator runtime profile in
// pre-order (parent before children). Timing fields are populated only
// when Profiled; row counts and depth-k are always real.
func (r *Rows) Operators() []OpProfile {
	out := make([]OpProfile, len(r.tree))
	for i, n := range r.tree {
		out[i] = OpProfile{
			Depth:   n.Depth,
			Name:    n.Label,
			Rows:    n.Out,
			DepthK:  n.DepthK,
			TimeMS:  float64(n.TimeNS) / 1e6,
			Calls:   n.Calls,
			EstRows: -1,
		}
		if i < len(r.est) {
			out[i].EstRows = r.est[i]
		}
	}
	return out
}

// ExecTree renders the executed operator tree with per-operator output
// counts (EXPLAIN ANALYZE style). The rendering is computed on demand, so
// hot paths that never ask for it pay nothing.
func (r *Rows) ExecTree() string {
	if r.execTree == nil {
		return ""
	}
	return r.execTree()
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// Next advances the cursor; use Row to read the current row.
func (r *Rows) Next() bool {
	if r.pos >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row after Next.
func (r *Rows) Row() []Value {
	raw := r.rows[r.pos-1]
	out := make([]Value, len(raw))
	for i, v := range raw {
		out[i] = Value{v: v}
	}
	return out
}

// Score returns the current row's ranking score after Next.
func (r *Rows) Score() float64 { return r.Scores[r.pos-1] }

// At returns row i without moving the cursor.
func (r *Rows) At(i int) []Value {
	raw := r.rows[i]
	out := make([]Value, len(raw))
	for j, v := range raw {
		out[j] = Value{v: v}
	}
	return out
}

// ValueAt returns the value at row i, column j without materializing a
// row slice — the allocation-free counterpart of At(i)[j].
func (r *Rows) ValueAt(i, j int) Value { return Value{v: r.rows[i][j]} }

// RowWidth returns the number of columns in row i.
func (r *Rows) RowWidth(i int) int { return len(r.rows[i]) }

// Result reports the effect of a DDL/DML statement.
type Result struct {
	RowsAffected int
	Message      string
}

// DB is an embedded RankSQL database, safe for concurrent use: queries
// proceed in parallel, DDL/DML statements are serialized against them.
// Configuration calls (RegisterScorer, SetTuning, SetSpin) are intended
// for setup time.
type DB struct {
	eng *engine.DB
}

// Open creates an empty in-memory database.
func Open() *DB {
	return &DB{eng: engine.New()}
}

// RegisterScorer makes a ranking function available to ORDER BY clauses
// and CREATE RANK INDEX statements.
func (db *DB) RegisterScorer(name string, fn ScoreFunc, opts ...ScorerOption) error {
	if fn == nil {
		return fmt.Errorf("ranksql: scorer %q has no function", name)
	}
	s := engine.Scorer{
		Fn: func(args []types.Value) float64 {
			wrapped := make([]Value, len(args))
			for i, a := range args {
				wrapped[i] = Value{v: a}
			}
			return fn(wrapped)
		},
		Cost:   1,
		MaxVal: 1,
	}
	for _, o := range opts {
		o(&s)
	}
	return db.eng.RegisterScorer(name, s)
}

// Exec runs a DDL or DML statement (CREATE TABLE, CREATE INDEX, CREATE
// RANK INDEX, INSERT).
func (db *DB) Exec(sql string) (*Result, error) {
	res, err := db.eng.Exec(sql)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: res.RowsAffected, Message: res.Message}, nil
}

// Query runs a SELECT and returns the materialized result. Ranking
// queries (ORDER BY scoring function, LIMIT k) are optimized with the
// rank-aware optimizer and executed incrementally.
func (db *DB) Query(sql string) (*Rows, error) {
	rows, err := db.eng.Query(sql)
	if err != nil {
		return nil, err
	}
	return wrapRows(rows), nil
}

func wrapRows(rows *engine.Rows) *Rows {
	return &Rows{
		Columns:   rows.Columns,
		rows:      rows.Data,
		Scores:    rows.Scores,
		Stats:     convertStats(rows.Stats),
		execTree:  rows.ExecTree,
		tree:      rows.Tree,
		est:       rows.Est,
		Profiled:  rows.Profiled,
		CacheHit:  rows.CacheHit,
		K:         rows.K,
		Exhausted: rows.Exhausted,
	}
}

// QueryScores is a convenience wrapper returning only the result scores.
func (db *DB) QueryScores(sql string) ([]float64, error) {
	rows, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	return rows.Scores, nil
}

// Explain returns the optimized physical plan for a SELECT, annotated
// with estimated cardinalities and costs.
func (db *DB) Explain(sql string) (string, error) {
	return db.eng.Explain(sql)
}

// ExplainAnalyze executes a SELECT with per-operator timing enabled and
// returns the profiled result: the rows hold the rendered operator tree
// (one "QUERY PLAN" column), and Operators() exposes the structured
// per-operator wall time, rows and depth-k. sql must be a plain SELECT
// or set-operation statement (without an EXPLAIN prefix of its own —
// `Query("EXPLAIN ANALYZE ...")` is the equivalent spelled out).
func (db *DB) ExplainAnalyze(sql string) (*Rows, error) {
	return db.Query("EXPLAIN ANALYZE " + sql)
}

// SetProfileSampling configures sampled operator profiling: every N-th
// execution of a query template runs with per-operator timing and feeds
// the template's operator profile (Rows.Profiled reports which). 0
// disables sampling; EXPLAIN ANALYZE always profiles. Default 16.
func (db *DB) SetProfileSampling(every int) {
	db.eng.SetProfileSampling(every)
}

// Tables lists the database's table names.
func (db *DB) Tables() []string {
	return db.eng.Catalog.TableNames()
}

// SetSpin makes scorer evaluation burn the given number of arithmetic
// iterations per declared cost unit, so declared predicate cost becomes
// real CPU time (useful for benchmarking; 0 disables).
func (db *DB) SetSpin(iterationsPerCostUnit int) {
	db.eng.SetSpin(iterationsPerCostUnit)
}

// Tuning exposes optimizer knobs.
type Tuning struct {
	// LeftDeepOnly restricts join enumeration to left-deep trees.
	LeftDeepOnly bool
	// RankHeuristic enables greedy rank-metric scheduling of µ operators.
	RankHeuristic bool
	// NoRankOperators disables rank-aware operators (traditional
	// optimizer; for comparisons).
	NoRankOperators bool
	// SampleRatio is the sampling fraction for cardinality estimation.
	SampleRatio float64
	// MinSampleRows floors the per-table sample size.
	MinSampleRows int
}

// SetTuning reconfigures the optimizer.
func (db *DB) SetTuning(t Tuning) error {
	if t.SampleRatio < 0 || t.SampleRatio > 1 {
		return fmt.Errorf("ranksql: sample ratio must be in [0, 1]")
	}
	opts := optimizer.DefaultOptions()
	opts.LeftDeepOnly = t.LeftDeepOnly
	opts.RankHeuristic = t.RankHeuristic
	opts.NoRankOperators = t.NoRankOperators
	if t.SampleRatio > 0 {
		opts.SampleRatio = t.SampleRatio
	}
	if t.MinSampleRows > 0 {
		opts.MinSampleRows = t.MinSampleRows
	}
	db.eng.SetOptions(opts)
	return nil
}

// DefaultTuning mirrors the engine defaults (heuristics on, 0.1% samples
// with a 100-row floor).
func DefaultTuning() Tuning {
	o := optimizer.DefaultOptions()
	return Tuning{
		LeftDeepOnly:  o.LeftDeepOnly,
		RankHeuristic: o.RankHeuristic,
		SampleRatio:   o.SampleRatio,
		MinSampleRows: o.MinSampleRows,
	}
}

func convertStats(s exec.Stats) Stats {
	return Stats{
		TuplesScanned: s.TuplesScanned,
		PredEvals:     s.PredEvals,
		PredCostUnits: s.PredCost,
		Comparisons:   s.Comparisons,
		JoinProbes:    s.JoinProbes,
		PeakBuffered:  s.PeakBuffered,
		Materialized:  s.Materialized,
	}
}

// Stmt is a prepared statement: parsed once, executable many times with
// different `?` parameter bindings. A Stmt is immutable and safe for
// concurrent use. Prepared SELECTs share the DB's plan cache, so repeated
// executions (and identical templates prepared elsewhere) skip
// optimization entirely.
type Stmt struct {
	p *engine.Prepared
}

// Prepare parses a statement template containing `?` placeholders.
// Placeholders may appear in WHERE clauses, LIMIT bounds and INSERT
// values; they are bound positionally by Query/Exec arguments.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	p, err := db.eng.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// NumParams returns the number of `?` placeholders in the statement.
func (s *Stmt) NumParams() int { return s.p.NumParams() }

// Normalized returns the canonical template text — the statement
// component of the plan-cache key.
func (s *Stmt) Normalized() string { return s.p.Normalized() }

// SQL returns the original statement text.
func (s *Stmt) SQL() string { return s.p.SQL() }

// IsQuery reports whether the statement returns rows.
func (s *Stmt) IsQuery() bool { return s.p.IsQuery() }

// Query executes a prepared SELECT with the given parameter values.
// Supported argument types: nil, bool, int, int32, int64, float32,
// float64, string and Value.
func (s *Stmt) Query(args ...interface{}) (*Rows, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation: when ctx is done, execution is
// interrupted at the next cancellation point and ctx's error is returned.
func (s *Stmt) QueryContext(ctx context.Context, args ...interface{}) (*Rows, error) {
	params, release, err := getParams(args)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := s.p.QueryCancel(params, ctx.Done())
	if err != nil {
		if errors.Is(err, exec.ErrInterrupted) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return wrapRows(rows), nil
}

// Exec executes a prepared DDL/DML statement with the given parameters.
func (s *Stmt) Exec(args ...interface{}) (*Result, error) {
	params, release, err := getParams(args)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := s.p.Exec(params)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: res.RowsAffected, Message: res.Message}, nil
}

// ErrCursorInvalidated is returned by Cursor.Fetch when DDL changed the
// schema after the cursor was opened; the cursor is closed and must be
// re-opened.
var ErrCursorInvalidated = engine.ErrCursorInvalidated

// ErrCursorClosed is returned by Cursor.Fetch after Close.
var ErrCursorClosed = engine.ErrCursorClosed

// Cursor is a resumable ranked stream over a SELECT or set-operation
// statement: the operator tree is opened once and suspended between
// pulls, so fetching page N costs only the incremental work past page
// N-1 — no re-planning, no re-execution of earlier pages. Pages come
// back in the query's score order; a LIMIT k in the statement tunes the
// plan for depth k but does not cap the stream.
//
// The stream is a consistent snapshot of the data as of open (inserts
// landing between pulls are not seen); DDL invalidates the cursor.
type Cursor struct {
	c *engine.Cursor
}

// Cursor opens a resumable ranked cursor over a SELECT or set-operation
// statement. Repeated SELECT templates share the plan cache with Query.
func (db *DB) Cursor(sql string) (*Cursor, error) {
	c, err := db.eng.QueryCursor(sql)
	if err != nil {
		return nil, err
	}
	return &Cursor{c: c}, nil
}

// Cursor opens a resumable ranked cursor over the prepared query with
// the given parameter values.
func (s *Stmt) Cursor(args ...interface{}) (*Cursor, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	c, err := s.p.Cursor(params)
	if err != nil {
		return nil, err
	}
	return &Cursor{c: c}, nil
}

// Fetch pulls the next n rows from the suspended stream. The page's
// Exhausted reports whether the stream ran dry; Stats are cumulative
// across every pull of this cursor.
func (c *Cursor) Fetch(n int) (*Rows, error) {
	rows, err := c.c.Fetch(n)
	if err != nil {
		return nil, err
	}
	return wrapRows(rows), nil
}

// FetchContext is Fetch with cancellation: when ctx is done, the pull is
// interrupted at the next cancellation point (the cursor stays usable).
func (c *Cursor) FetchContext(ctx context.Context, n int) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := c.c.FetchCancel(n, ctx.Done())
	if err != nil {
		if errors.Is(err, exec.ErrInterrupted) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return wrapRows(rows), nil
}

// Close releases the cursor's suspended operator tree. Idempotent.
func (c *Cursor) Close() error { return c.c.Close() }

// Pulled returns the total number of rows fetched so far (the 0-based
// rank of the next row).
func (c *Cursor) Pulled() int { return c.c.Pulled() }

// Exhausted reports whether the stream has run dry.
func (c *Cursor) Exhausted() bool { return c.c.Exhausted() }

// Columns returns the qualified output column names.
func (c *Cursor) Columns() []string { return c.c.Columns() }

// CacheHit reports whether opening the cursor reused a cached plan.
func (c *Cursor) CacheHit() bool { return c.c.CacheHit() }

// K returns the statement's LIMIT — the depth hint the plan was tuned
// for (0 when the statement had none). The stream itself is not capped.
func (c *Cursor) K() int { return c.c.K() }

// PinnedBytes estimates the memory pinned by the cursor's suspended
// operator state (tuples resident in ranking queues, hash tables and
// materializations, plus tuples parked by an interrupted pull). Zero
// once the cursor is closed. The figure backs the server's
// cursor_pinned_bytes gauge.
func (c *Cursor) PinnedBytes() int64 { return c.c.PinnedBytes() }

// QueryContext runs a (possibly parameterized) SELECT with cancellation.
// It is one-shot sugar for Prepare + Stmt.QueryContext; repeated templates
// still hit the plan cache.
func (db *DB) QueryContext(ctx context.Context, sql string, args ...interface{}) (*Rows, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.QueryContext(ctx, args...)
}

// ExecContext runs a (possibly parameterized) DDL/DML statement. The
// context is checked before execution begins; DDL/DML itself is not
// interruptible.
func (db *DB) ExecContext(ctx context.Context, sql string, args ...interface{}) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Exec(args...)
}

// CacheStats is a snapshot of the plan cache's counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// StaleRecompiles counts cache hits discarded because a referenced
	// table outgrew the plan's planning-time row count (see
	// SetPlanStalenessFactor), forcing a recompile.
	StaleRecompiles   uint64
	Entries, Capacity int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCacheStats snapshots the DB's plan-cache counters.
func (db *DB) PlanCacheStats() CacheStats {
	s := db.eng.Plans.Stats()
	return CacheStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		StaleRecompiles: s.StaleRecompiles,
		Entries:         s.Entries, Capacity: s.Capacity,
	}
}

// SetPlanCacheCapacity resizes the plan cache; 0 disables caching.
func (db *DB) SetPlanCacheCapacity(n int) { db.eng.Plans.Resize(n) }

// SetPlanStalenessFactor sets the row-count growth ratio past which a
// cached plan is recompiled: a plan compiled against a table of R rows is
// discarded (and transparently re-optimized) once the table exceeds
// factor*R rows, so cost estimates track data growth without DDL. Values
// <= 1 disable the check. The default is 2.
func (db *DB) SetPlanStalenessFactor(factor float64) {
	db.eng.SetStaleFactor(factor)
}

// paramPool recycles bind-argument slices across Query/Exec calls. The
// engine copies parameter values out of the slice during binding and
// never retains it, so the slice can be returned to the pool as soon as
// the call completes.
var paramPool = sync.Pool{
	New: func() interface{} {
		s := make([]types.Value, 0, 8)
		return &s
	},
}

// getParams converts native Go arguments to engine values in a pooled
// slice. The returned release func must be called once the engine call
// has completed (it is a no-op when args is empty).
func getParams(args []interface{}) ([]types.Value, func(), error) {
	if len(args) == 0 {
		return nil, func() {}, nil
	}
	p := paramPool.Get().(*[]types.Value)
	out, err := appendValues((*p)[:0], args)
	if err != nil {
		paramPool.Put(p)
		return nil, nil, err
	}
	*p = out
	return out, func() {
		*p = (*p)[:0]
		paramPool.Put(p)
	}, nil
}

// toValues converts native Go arguments to engine values.
func toValues(args []interface{}) ([]types.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	return appendValues(make([]types.Value, 0, len(args)), args)
}

// appendValues appends the converted arguments to dst.
func appendValues(dst []types.Value, args []interface{}) ([]types.Value, error) {
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			dst = append(dst, types.Null())
		case bool:
			dst = append(dst, types.NewBool(v))
		case int:
			dst = append(dst, types.NewInt(int64(v)))
		case int32:
			dst = append(dst, types.NewInt(int64(v)))
		case int64:
			dst = append(dst, types.NewInt(v))
		case float32:
			dst = append(dst, types.NewFloat(float64(v)))
		case float64:
			dst = append(dst, types.NewFloat(v))
		case string:
			dst = append(dst, types.NewString(v))
		case Value:
			dst = append(dst, v.v)
		default:
			return nil, fmt.Errorf("ranksql: unsupported parameter type %T at position %d", a, i)
		}
	}
	return dst, nil
}
