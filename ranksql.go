// Package ranksql is an embedded, in-memory relational engine with
// first-class support for ranking (top-k) queries, implementing the
// RankSQL system of Li, Chang, Ilyas and Song (SIGMOD 2005):
//
//   - a rank-relational algebra in which order is a logical property of
//     relations alongside membership, with a rank operator µ that
//     evaluates ranking predicates one at a time,
//   - a pipelined, incremental execution model whose cost is proportional
//     to k (rank-scans, rank joins HRJN/NRJN, rank-aware set operations),
//   - a System-R style optimizer that enumerates plans along two
//     dimensions — join order and evaluated ranking predicates — costed
//     with sampling-based cardinality estimation.
//
// Quick start:
//
//	db := ranksql.Open()
//	db.Exec(`CREATE TABLE hotel (name TEXT, price FLOAT)`)
//	db.Exec(`INSERT INTO hotel VALUES ('Grand', 120), ('Budget', 40)`)
//	db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
//		return (200 - args[0].Float()) / 200
//	}, ranksql.WithCost(1))
//	rows, _ := db.Query(`SELECT name FROM hotel ORDER BY cheap(price) LIMIT 1`)
//
// Ranking queries use ORDER BY <scoring function> LIMIT k where the
// scoring function is a sum of (optionally weighted) registered scorer
// calls; larger scores rank first. Arbitrary arithmetic ORDER BY
// expressions are supported as opaque ranking predicates.
package ranksql

import (
	"fmt"

	"ranksql/internal/engine"
	"ranksql/internal/exec"
	"ranksql/internal/optimizer"
	"ranksql/internal/types"
)

// Value is a scalar query value: NULL, BOOL, INT, FLOAT or TEXT.
type Value struct {
	v types.Value
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.v.IsNull() }

// Bool returns the boolean payload (false for non-bools).
func (v Value) Bool() bool { return v.v.Kind() == types.KindBool && v.v.Bool() }

// Int returns the value as an int64 (0 when not numeric).
func (v Value) Int() int64 { i, _ := v.v.AsInt(); return i }

// Float returns the value as a float64 (0 when not numeric).
func (v Value) Float() float64 { f, _ := v.v.AsFloat(); return f }

// String renders the value.
func (v Value) String() string { return v.v.String() }

// Text returns the string payload ("" for non-strings).
func (v Value) Text() string {
	if v.v.Kind() == types.KindString {
		return v.v.Str()
	}
	return ""
}

// Any converts to a native Go value: nil, bool, int64, float64 or string.
func (v Value) Any() interface{} {
	switch v.v.Kind() {
	case types.KindBool:
		return v.v.Bool()
	case types.KindInt:
		return v.v.Int()
	case types.KindFloat:
		return v.v.Float()
	case types.KindString:
		return v.v.Str()
	default:
		return nil
	}
}

// ScoreFunc is a user-defined ranking predicate: it maps argument values
// to a score, conventionally in [0, 1] (configurable via WithMax). Larger
// is better. Functions must be deterministic.
type ScoreFunc func(args []Value) float64

// ScorerOption configures a registered scorer.
type ScorerOption func(*engine.Scorer)

// WithCost declares the scorer's per-evaluation cost in abstract units;
// the optimizer schedules expensive predicates later and the executor can
// burn proportional CPU in spin mode. Default 1.
func WithCost(c float64) ScorerOption {
	return func(s *engine.Scorer) { s.Cost = c }
}

// WithMax declares the scorer's maximal possible value, used for
// upper-bound (maximal-possible-score) computation. Default 1.
func WithMax(m float64) ScorerOption {
	return func(s *engine.Scorer) { s.MaxVal = m }
}

// Stats are execution counters for one query.
type Stats struct {
	TuplesScanned int64
	PredEvals     int64
	PredCostUnits float64
	Comparisons   int64
	JoinProbes    int64
	PeakBuffered  int64
}

// Rows is a materialized query result.
type Rows struct {
	// Columns are the qualified output column names.
	Columns []string
	rows    [][]types.Value
	// Scores[i] is row i's score under the query's ranking function.
	Scores []float64
	// Stats are the query's execution counters.
	Stats Stats
	// ExecTree renders the executed operator tree with per-operator
	// output counts (EXPLAIN ANALYZE style).
	ExecTree string

	pos int
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// Next advances the cursor; use Row to read the current row.
func (r *Rows) Next() bool {
	if r.pos >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row after Next.
func (r *Rows) Row() []Value {
	raw := r.rows[r.pos-1]
	out := make([]Value, len(raw))
	for i, v := range raw {
		out[i] = Value{v: v}
	}
	return out
}

// Score returns the current row's ranking score after Next.
func (r *Rows) Score() float64 { return r.Scores[r.pos-1] }

// At returns row i without moving the cursor.
func (r *Rows) At(i int) []Value {
	raw := r.rows[i]
	out := make([]Value, len(raw))
	for j, v := range raw {
		out[j] = Value{v: v}
	}
	return out
}

// Result reports the effect of a DDL/DML statement.
type Result struct {
	RowsAffected int
	Message      string
}

// DB is an embedded RankSQL database. A DB is not safe for concurrent use;
// callers requiring concurrency should serialize access.
type DB struct {
	eng *engine.DB
}

// Open creates an empty in-memory database.
func Open() *DB {
	return &DB{eng: engine.New()}
}

// RegisterScorer makes a ranking function available to ORDER BY clauses
// and CREATE RANK INDEX statements.
func (db *DB) RegisterScorer(name string, fn ScoreFunc, opts ...ScorerOption) error {
	if fn == nil {
		return fmt.Errorf("ranksql: scorer %q has no function", name)
	}
	s := engine.Scorer{
		Fn: func(args []types.Value) float64 {
			wrapped := make([]Value, len(args))
			for i, a := range args {
				wrapped[i] = Value{v: a}
			}
			return fn(wrapped)
		},
		Cost:   1,
		MaxVal: 1,
	}
	for _, o := range opts {
		o(&s)
	}
	return db.eng.RegisterScorer(name, s)
}

// Exec runs a DDL or DML statement (CREATE TABLE, CREATE INDEX, CREATE
// RANK INDEX, INSERT).
func (db *DB) Exec(sql string) (*Result, error) {
	res, err := db.eng.Exec(sql)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: res.RowsAffected, Message: res.Message}, nil
}

// Query runs a SELECT and returns the materialized result. Ranking
// queries (ORDER BY scoring function, LIMIT k) are optimized with the
// rank-aware optimizer and executed incrementally.
func (db *DB) Query(sql string) (*Rows, error) {
	rows, err := db.eng.Query(sql)
	if err != nil {
		return nil, err
	}
	return &Rows{
		Columns:  rows.Columns,
		rows:     rows.Data,
		Scores:   rows.Scores,
		Stats:    convertStats(rows.Stats),
		ExecTree: rows.ExecTree,
	}, nil
}

// QueryScores is a convenience wrapper returning only the result scores.
func (db *DB) QueryScores(sql string) ([]float64, error) {
	rows, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	return rows.Scores, nil
}

// Explain returns the optimized physical plan for a SELECT, annotated
// with estimated cardinalities and costs.
func (db *DB) Explain(sql string) (string, error) {
	return db.eng.Explain(sql)
}

// Tables lists the database's table names.
func (db *DB) Tables() []string {
	return db.eng.Catalog.TableNames()
}

// SetSpin makes scorer evaluation burn the given number of arithmetic
// iterations per declared cost unit, so declared predicate cost becomes
// real CPU time (useful for benchmarking; 0 disables).
func (db *DB) SetSpin(iterationsPerCostUnit int) {
	db.eng.SpinPerCostUnit = iterationsPerCostUnit
}

// Tuning exposes optimizer knobs.
type Tuning struct {
	// LeftDeepOnly restricts join enumeration to left-deep trees.
	LeftDeepOnly bool
	// RankHeuristic enables greedy rank-metric scheduling of µ operators.
	RankHeuristic bool
	// NoRankOperators disables rank-aware operators (traditional
	// optimizer; for comparisons).
	NoRankOperators bool
	// SampleRatio is the sampling fraction for cardinality estimation.
	SampleRatio float64
	// MinSampleRows floors the per-table sample size.
	MinSampleRows int
}

// SetTuning reconfigures the optimizer.
func (db *DB) SetTuning(t Tuning) error {
	if t.SampleRatio < 0 || t.SampleRatio > 1 {
		return fmt.Errorf("ranksql: sample ratio must be in [0, 1]")
	}
	opts := optimizer.DefaultOptions()
	opts.LeftDeepOnly = t.LeftDeepOnly
	opts.RankHeuristic = t.RankHeuristic
	opts.NoRankOperators = t.NoRankOperators
	if t.SampleRatio > 0 {
		opts.SampleRatio = t.SampleRatio
	}
	if t.MinSampleRows > 0 {
		opts.MinSampleRows = t.MinSampleRows
	}
	db.eng.Options = opts
	return nil
}

// DefaultTuning mirrors the engine defaults (heuristics on, 0.1% samples
// with a 100-row floor).
func DefaultTuning() Tuning {
	o := optimizer.DefaultOptions()
	return Tuning{
		LeftDeepOnly:  o.LeftDeepOnly,
		RankHeuristic: o.RankHeuristic,
		SampleRatio:   o.SampleRatio,
		MinSampleRows: o.MinSampleRows,
	}
}

func convertStats(s exec.Stats) Stats {
	return Stats{
		TuplesScanned: s.TuplesScanned,
		PredEvals:     s.PredEvals,
		PredCostUnits: s.PredCost,
		Comparisons:   s.Comparisons,
		JoinProbes:    s.JoinProbes,
		PeakBuffered:  s.PeakBuffered,
	}
}
