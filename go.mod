module ranksql

go 1.24
