package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ranksql"
	"ranksql/internal/obs"
	"ranksql/internal/router"
	"ranksql/internal/server"
)

// runBench is the `ranksql bench` load generator: it drives a ranksqld
// service over HTTP with prepared top-k statements under concurrency,
// verifies ranked results, and reports throughput, latency percentiles
// and plan-cache effectiveness. With no -addr it self-hosts an in-process
// daemon seeded with an example dataset, so the whole service path —
// HTTP, sessions, prepared statements, plan cache, concurrent engine —
// is exercised end to end with one command.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "", "target ranksqld base URL (empty = self-hosted in-process server)")
	dataset := fs.String("seed", "webshop", "dataset for the self-hosted server: webshop or tripplanner")
	rows := fs.Int("rows", 20000, "seeded base-table row count (self-hosted)")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	requests := fs.Int("requests", 2000, "total query requests (timed, after warm-up)")
	warmup := fs.Int("warmup", 200, "untimed warm-up requests before the measured window (plan cache and CPU warm)")
	k := fs.Int("k", 10, "top-k bound per query")
	writeEvery := fs.Int("write-every", 0, "per worker, issue an INSERT every N queries (0 = read-only)")
	paginate := fs.Bool("paginate", false, "pagination scenario: each request opens a ranked cursor and pulls -pages pages of k rows through /cursor/next, then compares the cursor's enumeration cost against one-shot and naive re-execution paging")
	pages := fs.Int("pages", 10, "pages pulled per cursor session in -paginate mode")
	templates := fs.Int("templates", 1, "distinct query templates rotated per worker (pressures the plan cache; open cursors must keep streaming after their plan is evicted)")
	routerMode := fs.Bool("router", false, "drive a sharded cluster: self-host -shards in-process ranksqld shards behind a router (or treat -addr as a router)")
	numShards := fs.Int("shards", 2, "shard count for the self-hosted router cluster")
	replicas := fs.Int("replicas", 1, "replicas per shard for the self-hosted router cluster (the router fans writes to every copy and fails reads over between them)")
	failover := fs.Bool("failover", false, "router-mode failover scenario: kill one replica of shard 0 halfway through the measured window; every query must still succeed (needs -replicas >= 2, self-hosted)")
	jsonPath := fs.String("json", "", "write the machine-readable benchmark report to this file")
	insightPath := fs.String("insight", "", "after the run, dump the service's /insight/templates workload profile to this file")
	validate := fs.String("validate", "", "validate an existing benchmark report file and exit (CI schema check)")
	compare := fs.Bool("compare", false, "compare two report files (bench -compare old.json new.json) and warn on >10% p95-latency or per-request resource regressions")
	strict := fs.Bool("strict", false, "with -compare: exit non-zero on regressions (the CI bench-gate); the gate only applies when both reports were recorded on comparable machines")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			log.Fatalf("bench: validate %s: %v", *validate, err)
		}
		fmt.Printf("%s: valid benchmark report\n", *validate)
		return
	}
	if *compare {
		if fs.NArg() != 2 {
			log.Fatalf("bench: -compare needs exactly two report files (old new), got %d", fs.NArg())
		}
		res, err := compareReports(fs.Arg(0), fs.Arg(1))
		if err != nil {
			log.Fatalf("bench: compare: %v", err)
		}
		// Timing numbers (p95, qps) only gate between comparable machines;
		// per-request resource counters (tuples scanned/materialized per
		// request) are machine-independent and always gate.
		gating := res.resourceWarnings
		if res.comparable {
			gating += res.timingWarnings
		} else if res.timingWarnings > 0 {
			fmt.Printf("%d timing warning(s), but the reports' machines differ — refusing to gate on timing (informational only)\n",
				res.timingWarnings)
		}
		if gating == 0 {
			fmt.Println("no gating regressions: within 10% of baseline")
			return
		}
		fmt.Printf("%d gating regression warning(s) — see above\n", gating)
		if *strict {
			os.Exit(1)
		}
		return
	}
	if *concurrency < 1 || *requests < 1 || *k < 1 {
		log.Fatalf("bench: -concurrency, -requests and -k must be >= 1 (got %d, %d, %d)", *concurrency, *requests, *k)
	}
	if *replicas < 1 {
		*replicas = 1
	}
	if *failover && (!*routerMode || *replicas < 2 || *addr != "") {
		log.Fatalf("bench: -failover needs a self-hosted router cluster with -replicas >= 2 (got -router=%v -replicas=%d -addr=%q)",
			*routerMode, *replicas, *addr)
	}
	if *warmup < 0 {
		*warmup = 0
	}
	if *pages < 1 {
		*pages = 1
	}
	if *templates < 1 {
		*templates = 1
	}

	base := *addr
	var cluster *benchCluster
	if base == "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if *routerMode {
			cluster = selfHostCluster(ctx, *numShards, *replicas, *dataset, *rows)
			base = cluster.base
			fmt.Printf("self-hosted router at %s over %d shard(s) x %d replica(s) (%s, %d rows partitioned)\n",
				base, *numShards, *replicas, *dataset, *rows)
		} else {
			// Self-host a daemon on a loopback port.
			db := ranksql.Open()
			if err := server.Seed(db, *dataset, *rows); err != nil {
				log.Fatalf("bench: seeding: %v", err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatalf("bench: listen: %v", err)
			}
			srv := server.New(db, server.WithLogger(func(string, ...interface{}) {}))
			go func() {
				if err := srv.ServeListener(ctx, ln); err != nil {
					log.Fatalf("bench: server: %v", err)
				}
			}()
			base = "http://" + ln.Addr().String()
			fmt.Printf("self-hosted ranksqld at %s (%s, %d rows)\n", base, *dataset, *rows)
		}
	}

	queryTemplate, insertTemplate, paramGen := benchWorkload(*dataset)
	fmt.Printf("template: %s\n", queryTemplate)
	fmt.Printf("%d requests (after %d warm-up), %d workers, k=%d", *requests, *warmup, *concurrency, *k)
	if *writeEvery > 0 {
		fmt.Printf(", 1 INSERT per %d queries per worker", *writeEvery)
	}
	if *paginate {
		fmt.Printf(", %d cursor pages per request", *pages)
	}
	if *templates > 1 {
		fmt.Printf(", %d templates", *templates)
	}
	fmt.Println()

	var (
		done       int64
		pagesDone  int64
		cacheHits  int64
		violations int64
		writes     int64
		maxNanos   int64
		failed     int64
		hist       = obs.NewHistogram()
	)
	// -failover: one replica of shard 0 is killed the moment half the
	// measured requests have completed; killedReplica is written under the
	// Once and read only after wg.Wait.
	var killOnce sync.Once
	killedReplica := ""
	// Warm-up requests are issued through the same sessions and prepared
	// statements as the measured window, so the plan cache, scheduler and
	// allocator are warm — but their latencies never enter the histogram.
	// All workers finish warming up before the timed window opens (the
	// warmed barrier), so slow first-compilations can't leak into the tail.
	var warmed, wg sync.WaitGroup
	timedGate := make(chan struct{})
	// Distribute requests across workers, spreading the remainder so
	// -requests (and -warmup) are honored exactly.
	perWorker, extra := *requests / *concurrency, *requests%*concurrency
	warmPerWorker, warmExtra := *warmup / *concurrency, *warmup%*concurrency
	warmed.Add(*concurrency)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			quota, warmQuota := perWorker, warmPerWorker
			if worker < extra {
				quota++
			}
			if worker < warmExtra {
				warmQuota++
			}
			c := &benchClient{base: base, http: &http.Client{Timeout: 30 * time.Second}}
			sessionID, err := c.openSession()
			if err != nil {
				log.Fatalf("bench: worker %d: session: %v", worker, err)
			}
			// Each worker rotates through -templates distinct statement
			// shapes; with more shapes than plan-cache capacity, every
			// request evicts someone else's plan, so paginating cursors
			// demonstrably keep streaming after losing their cached plan.
			stmtIDs := make([]string, *templates)
			for j := range stmtIDs {
				if stmtIDs[j], err = c.prepare(sessionID, templateVariant(*dataset, queryTemplate, j)); err != nil {
					log.Fatalf("bench: worker %d: prepare template %d: %v", worker, j, err)
				}
			}
			insertID := ""
			if *writeEvery > 0 {
				if insertID, err = c.prepare(sessionID, insertTemplate); err != nil {
					log.Fatalf("bench: worker %d: prepare insert: %v", worker, err)
				}
			}
			rng := server.NewRng(uint64(worker)*0x9E3779B97F4A7C15 + 1)
			for i := 0; i < warmQuota; i++ {
				if _, err := c.query(sessionID, stmtIDs[i%len(stmtIDs)], paramGen.query(&rng, *k)); err != nil {
					log.Fatalf("bench: worker %d: warm-up query: %v", worker, err)
				}
			}
			warmed.Done()
			<-timedGate
			for i := 0; i < quota; i++ {
				if *writeEvery > 0 && i%*writeEvery == *writeEvery-1 {
					if err := c.exec(sessionID, insertID, paramGen.insert(&rng, worker, i)); err != nil {
						log.Fatalf("bench: worker %d: insert: %v", worker, err)
					}
					atomic.AddInt64(&writes, 1)
				}
				stmtID := stmtIDs[i%len(stmtIDs)]
				params := paramGen.query(&rng, *k)
				t0 := time.Now()
				var d time.Duration
				if *paginate {
					out, err := c.paginateSession(sessionID, stmtID, params, *k, *pages, hist)
					if err != nil {
						if *failover {
							atomic.AddInt64(&failed, 1)
							atomic.AddInt64(&done, 1)
							continue
						}
						log.Fatalf("bench: worker %d: cursor session: %v", worker, err)
					}
					d = time.Since(t0)
					atomic.AddInt64(&pagesDone, int64(out.pages))
					atomic.AddInt64(&violations, int64(out.violations))
					if out.cacheHit {
						atomic.AddInt64(&cacheHits, 1)
					}
				} else {
					resp, err := c.query(sessionID, stmtID, params)
					if err != nil {
						if *failover {
							atomic.AddInt64(&failed, 1)
							atomic.AddInt64(&done, 1)
							continue
						}
						log.Fatalf("bench: worker %d: query: %v", worker, err)
					}
					d = time.Since(t0)
					hist.ObserveDuration(d)
					if resp.CacheHit {
						atomic.AddInt64(&cacheHits, 1)
					}
					// Verify the ranked contract: at most k rows, scores
					// non-increasing.
					if len(resp.Rows) > *k {
						atomic.AddInt64(&violations, 1)
					}
					for j := 1; j < len(resp.Scores); j++ {
						if resp.Scores[j] > resp.Scores[j-1]+1e-9 {
							atomic.AddInt64(&violations, 1)
							break
						}
					}
				}
				for {
					cur := atomic.LoadInt64(&maxNanos)
					if int64(d) <= cur || atomic.CompareAndSwapInt64(&maxNanos, cur, int64(d)) {
						break
					}
				}
				atomic.AddInt64(&done, 1)
				if *failover && atomic.LoadInt64(&done) >= int64(*requests/2) {
					killOnce.Do(func() { killedReplica = cluster.kill() })
				}
			}
		}(w)
	}
	warmed.Wait()
	start := time.Now()
	close(timedGate)
	wg.Wait()
	elapsed := time.Since(start)

	total := atomic.LoadInt64(&done)
	if total == 0 {
		fmt.Println("no requests issued (check -requests/-concurrency)")
		os.Exit(1)
	}
	lat := hist.Summarize()
	maxMS := float64(atomic.LoadInt64(&maxNanos)) / 1e6
	hitRate := float64(atomic.LoadInt64(&cacheHits)) / float64(total)
	fmt.Printf("\n== results ==\n")
	fmt.Printf("queries    %d (+%d inserts) in %.2fs  ->  %.0f qps\n",
		total, atomic.LoadInt64(&writes), elapsed.Seconds(), float64(total)/elapsed.Seconds())
	if *paginate {
		fmt.Printf("pages      %d pages of k=%d across %d cursor sessions  ->  %.0f pages/sec\n",
			atomic.LoadInt64(&pagesDone), *k, total, float64(atomic.LoadInt64(&pagesDone))/elapsed.Seconds())
	}
	fmt.Printf("latency    mean=%.2fms  p50=%.2fms  p95=%.2fms  p99=%.2fms  max=%.2fms\n",
		lat.MeanMS, lat.P50MS, lat.P95MS, lat.P99MS, maxMS)
	fmt.Printf("plan cache %d/%d client-observed hits (%.1f%%)\n",
		atomic.LoadInt64(&cacheHits), total, 100*hitRate)

	report := benchReport{
		Mode:         "single",
		Dataset:      *dataset,
		Rows:         *rows,
		Concurrency:  *concurrency,
		Requests:     int(total),
		Warmup:       *warmup,
		K:            *k,
		Templates:    *templates,
		Writes:       atomic.LoadInt64(&writes),
		ElapsedSec:   elapsed.Seconds(),
		QPS:          float64(total) / elapsed.Seconds(),
		Latency:      lat,
		MaxMS:        maxMS,
		CacheHitRate: hitRate,
		Violations:   atomic.LoadInt64(&violations),
		Machine:      currentMachine(),
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
	}
	if *routerMode {
		report.Mode = "router"
		report.Shards = *numShards
		report.Replicas = *replicas
	}

	if v := atomic.LoadInt64(&violations); v > 0 {
		fmt.Printf("RANKING VIOLATIONS: %d\n", v)
		writeReport(*jsonPath, &report)
		os.Exit(1)
	}
	fmt.Println("ranking    all responses correctly ordered, |rows| <= k, ranks contiguous")

	if *paginate {
		pag, err := measurePagination(base, queryTemplate, paramGen, *k, *pages)
		if err != nil {
			log.Fatalf("bench: pagination measurement: %v", err)
		}
		pag.Sessions = int(total)
		pag.PagesPerSec = float64(atomic.LoadInt64(&pagesDone)) / elapsed.Seconds()
		report.Pagination = pag
		fmt.Printf("\n== pagination: enumeration cost for %d pages of k=%d ==\n", *pages, *k)
		fmt.Printf("cursor     %d tuples scanned (suspended stream, pages are deltas)\n", pag.CursorTuples)
		fmt.Printf("one-shot   %d tuples scanned for a single top-%d  ->  cursor/one-shot = %.2fx\n",
			pag.OneShotTuples, *pages**k, pag.CursorVsOneShot)
		fmt.Printf("naive      %d tuples scanned re-running deeper limits  ->  naive/one-shot = %.2fx\n",
			pag.NaiveTuples, pag.NaiveVsOneShot)
	}

	// Server-side view.
	if *routerMode {
		var stats router.Snapshot
		if err := getJSON(base+"/stats", &stats); err != nil {
			log.Fatalf("bench: stats: %v", err)
		}
		if *paginate {
			fmt.Printf("\ncursors: opened=%d open=%d hits=%d misses=%d expired=%d\n",
				stats.Cursors.Opened, stats.Cursors.Open, stats.Cursors.Hits,
				stats.Cursors.Misses, stats.Cursors.Expired)
		}
		report.Pruning = &pruningReport{
			QueriesWithPrunedShards: stats.QueriesWithPrunedShards,
			ShardsPrunedTotal:       stats.ShardsPrunedTotal,
			RefillsTotal:            stats.RefillsTotal,
			FetchAmplification:      stats.FetchAmplification,
		}
		report.Resources = &resourceReport{
			RowsScanned:        int64(stats.TuplesScannedTotal),
			TuplesMaterialized: int64(stats.TuplesMaterializedTotal),
		}
		fmt.Printf("\n== router /stats ==\n")
		fmt.Printf("shards=%d queries=%d execs=%d errors=%d avg=%.2fms\n",
			stats.Shards, stats.Queries, stats.Execs, stats.Errors, stats.AvgQueryMS)
		fmt.Printf("threshold merge: %d/%d queries pruned >=1 shard (%d shard fetches skipped), refills=%d\n",
			stats.QueriesWithPrunedShards, stats.Queries, stats.ShardsPrunedTotal, stats.RefillsTotal)
		fmt.Printf("fetch amplification: %.2f rows fetched per row returned (%d/%d)\n",
			stats.FetchAmplification, stats.RowsFetchedTotal, stats.RowsReturnedTotal)
		for _, q := range stats.PerQuery {
			fmt.Printf("  %6d× pruned=%d refills=%d avg=%.2fms  %s\n",
				q.Count, q.ShardsPruned, q.Refills, q.AvgMS, truncate(q.Query, 80))
		}
		if *failover {
			report.Failover = &failoverReport{
				Replicas:             *replicas,
				KilledReplica:        killedReplica,
				FailedQueries:        atomic.LoadInt64(&failed),
				Failovers:            stats.Reliability.Failovers,
				HedgesIssued:         stats.Reliability.HedgesIssued,
				HedgesWon:            stats.Reliability.HedgesWon,
				CursorReplicaResumes: stats.Reliability.CursorReplicaResumes,
			}
			fmt.Printf("\n== failover ==\n")
			fmt.Printf("killed %s at the halfway point: failed_queries=%d failovers=%d hedges=%d/%d cursor_resumes=%d\n",
				killedReplica, report.Failover.FailedQueries, report.Failover.Failovers,
				report.Failover.HedgesWon, report.Failover.HedgesIssued,
				report.Failover.CursorReplicaResumes)
			if report.Failover.FailedQueries > 0 {
				fmt.Printf("FAILOVER: %d queries failed after the replica kill\n", report.Failover.FailedQueries)
				writeReport(*jsonPath, &report)
				os.Exit(1)
			}
		}
		// Probe the router-side ranked-result cache: repeat one query and
		// confirm via the per-replica request counters that the second
		// answer involved zero shard fan-out.
		rc, err := measureResultCache(base, queryTemplate, paramGen, *k)
		if err != nil {
			log.Fatalf("bench: result cache probe: %v", err)
		}
		report.ResultCache = rc
		fmt.Printf("result cache: hits=%d misses=%d stale=%d hit_rate=%.3f zero_fanout_verified=%v\n",
			rc.Hits, rc.Misses, rc.Stale, rc.HitRate, rc.VerifiedZeroFanout)
		if !rc.VerifiedZeroFanout {
			fmt.Println("RESULT CACHE: repeated query was not served fan-out-free")
			writeReport(*jsonPath, &report)
			os.Exit(1)
		}
		dumpInsight(base, *insightPath)
		writeReport(*jsonPath, &report)
		return
	}
	var stats server.Snapshot
	if err := getJSON(base+"/stats", &stats); err != nil {
		log.Fatalf("bench: stats: %v", err)
	}
	// Prefer the daemon's own plan-cache hit rate (it also sees warm-up
	// traffic and concurrent clients) in the recorded report.
	report.CacheHitRate = stats.PlanCache.HitRate
	fmt.Printf("\n== server /stats ==\n")
	fmt.Printf("queries=%d execs=%d errors=%d qps(recent)=%.0f avg=%.2fms\n",
		stats.Queries, stats.Execs, stats.Errors, stats.QPS, stats.AvgQueryMS)
	fmt.Printf("plan cache: hits=%d misses=%d entries=%d hit_rate=%.1f%%\n",
		stats.PlanCache.Hits, stats.PlanCache.Misses, stats.PlanCache.Entries, 100*stats.PlanCache.HitRate)
	if *paginate {
		fmt.Printf("cursors: opened=%d open=%d hits=%d misses=%d expired=%d\n",
			stats.Cursors.Opened, stats.Cursors.Open, stats.Cursors.Hits,
			stats.Cursors.Misses, stats.Cursors.Expired)
	}
	for _, q := range stats.PerQuery {
		fmt.Printf("  %6d× avg_depth_k=%.1f max_depth_k=%d avg=%.2fms  %s\n",
			q.Count, q.AvgDepthK, q.MaxDepthK, q.AvgMS, truncate(q.Query, 80))
	}
	report.Resources = &resourceReport{
		RowsScanned:          int64(stats.Resources.TuplesScanned),
		TuplesMaterialized:   int64(stats.Resources.TuplesMaterialized),
		CursorPinnedBytesMax: stats.Resources.CursorPinnedBytesMax,
	}
	fmt.Printf("resources: %d tuples scanned, %d materialized, cursor pinned max %dB\n",
		report.Resources.RowsScanned, report.Resources.TuplesMaterialized,
		report.Resources.CursorPinnedBytesMax)
	dumpInsight(base, *insightPath)
	writeReport(*jsonPath, &report)
}

// dumpInsight fetches the service's /insight/templates profile and
// writes it verbatim, so CI can upload the workload's depth-k and drift
// breakdown alongside the perf report.
func dumpInsight(base, path string) {
	if path == "" {
		return
	}
	var raw json.RawMessage
	if err := getJSON(base+"/insight/templates", &raw); err != nil {
		log.Fatalf("bench: insight: %v", err)
	}
	if err := os.WriteFile(path, append([]byte(raw), '\n'), 0o644); err != nil {
		log.Fatalf("bench: writing %s: %v", path, err)
	}
	fmt.Printf("insight profile written to %s\n", path)
}

// compareResult classifies what `bench -compare` found. Timing warnings
// (p95 latency, throughput) and resource warnings (per-request tuples
// scanned/materialized, pinned cursor bytes) are kept apart because only
// the latter are machine-independent: the comparable flag reports whether
// the two runs came from comparable machines (same CPU model, GOMAXPROCS
// and architecture), and when they did not, timing deltas mean nothing
// and must not gate. Reports that predate machine metadata are treated as
// comparable so old baselines keep working, with a note.
type compareResult struct {
	timingWarnings   int
	resourceWarnings int
	comparable       bool
}

// compareReports is the regression check behind `bench -compare old
// new`: it validates both reports, then warns when the new run's p95
// latency or per-request resource use grew more than 10% over the
// baseline, or its throughput dropped more than 10%.
func compareReports(oldPath, newPath string) (res compareResult, err error) {
	load := func(path string) (*benchReport, error) {
		if err := validateReport(path); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r benchReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, err
		}
		return &r, nil
	}
	oldR, err := load(oldPath)
	if err != nil {
		return res, err
	}
	newR, err := load(newPath)
	if err != nil {
		return res, err
	}
	if oldR.Mode != newR.Mode {
		return res, fmt.Errorf("mode mismatch: %s is %q, %s is %q", oldPath, oldR.Mode, newPath, newR.Mode)
	}
	fmt.Printf("baseline %s (%s)  vs  %s\n", oldPath, oldR.GeneratedAt, newPath)
	res.comparable = true
	switch om, nm := oldR.Machine, newR.Machine; {
	case om == nil || nm == nil:
		fmt.Println("note: a report predates machine metadata; assuming comparable environments")
	case om.CPUModel != nm.CPUModel || om.GOMAXPROCS != nm.GOMAXPROCS || om.Arch != nm.Arch:
		res.comparable = false
		fmt.Printf("note: incomparable environments:\n  old %s (%s, GOMAXPROCS=%d, %s)\n  new %s (%s, GOMAXPROCS=%d, %s)\n",
			om.CPUModel, om.Arch, om.GOMAXPROCS, om.GoVersion,
			nm.CPUModel, nm.Arch, nm.GOMAXPROCS, nm.GoVersion)
	}

	warn := func(format string, args ...interface{}) {
		res.timingWarnings++
		fmt.Printf("WARNING: "+format+"\n", args...)
	}
	const slack = 1.10
	fmt.Printf("p95 latency  %.2fms -> %.2fms\n", oldR.Latency.P95MS, newR.Latency.P95MS)
	if oldR.Latency.P95MS > 0 && newR.Latency.P95MS > oldR.Latency.P95MS*slack {
		warn("p95 latency grew %.1f%% (%.2fms -> %.2fms)",
			100*(newR.Latency.P95MS/oldR.Latency.P95MS-1), oldR.Latency.P95MS, newR.Latency.P95MS)
	}
	fmt.Printf("qps          %.0f -> %.0f\n", oldR.QPS, newR.QPS)
	if newR.QPS < oldR.QPS/slack {
		warn("throughput dropped %.1f%% (%.0f -> %.0f qps)",
			100*(1-newR.QPS/oldR.QPS), oldR.QPS, newR.QPS)
	}
	// Resource counters are lifetime totals; normalize per request so
	// baselines with different -requests stay comparable.
	if oldR.Resources != nil && newR.Resources != nil {
		resourceWarn := func(format string, args ...interface{}) {
			res.resourceWarnings++
			fmt.Printf("WARNING: "+format+"\n", args...)
		}
		perReq := func(r *benchReport, v int64) float64 {
			n := r.Requests + r.Warmup
			if n < 1 {
				n = 1
			}
			return float64(v) / float64(n)
		}
		check := func(name string, ov, nv int64) {
			o, n := perReq(oldR, ov), perReq(newR, nv)
			fmt.Printf("%-12s %.1f -> %.1f per request\n", name, o, n)
			if o > 0 && n > o*slack {
				resourceWarn("%s per request grew %.1f%% (%.1f -> %.1f)", name, 100*(n/o-1), o, n)
			}
		}
		check("scanned", oldR.Resources.RowsScanned, newR.Resources.RowsScanned)
		check("materialized", oldR.Resources.TuplesMaterialized, newR.Resources.TuplesMaterialized)
		o, n := oldR.Resources.CursorPinnedBytesMax, newR.Resources.CursorPinnedBytesMax
		fmt.Printf("%-12s %d -> %d bytes\n", "pinned max", o, n)
		if o > 0 && float64(n) > float64(o)*slack {
			resourceWarn("max pinned cursor bytes grew %.1f%% (%d -> %d)", 100*(float64(n)/float64(o)-1), o, n)
		}
	} else if oldR.Resources == nil && newR.Resources != nil {
		fmt.Println("baseline predates resource accounting; skipping resource comparison")
	}
	return res, nil
}

// machineReport records where a benchmark ran. Absolute qps/latency
// numbers are only meaningful against a baseline from the same kind of
// machine, so -compare checks these fields before gating.
type machineReport struct {
	CPUModel   string `json:"cpu_model"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// currentMachine snapshots this host's identity for the report.
func currentMachine() *machineReport {
	return &machineReport{
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// cpuModel returns the CPU model string from /proc/cpuinfo, or a
// GOOS/GOARCH placeholder on platforms without it (macOS CI runners,
// etc.) — still stable per runner class, which is all the comparability
// check needs.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if i := strings.IndexByte(line, ':'); i >= 0 {
					return strings.TrimSpace(line[i+1:])
				}
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

// benchReport is the machine-readable result written by -json and
// checked by -validate: the recorded perf baseline's schema.
type benchReport struct {
	Mode         string             `json:"mode"` // "single" or "router"
	Dataset      string             `json:"dataset"`
	Rows         int                `json:"rows"`
	Shards       int                `json:"shards,omitempty"`
	Replicas     int                `json:"replicas,omitempty"`
	Concurrency  int                `json:"concurrency"`
	Requests     int                `json:"requests"`
	Warmup       int                `json:"warmup"`
	K            int                `json:"k"`
	Templates    int                `json:"templates,omitempty"`
	Writes       int64              `json:"writes"`
	ElapsedSec   float64            `json:"elapsed_sec"`
	QPS          float64            `json:"qps"`
	Latency      obs.Summary        `json:"latency_ms"`
	MaxMS        float64            `json:"max_ms"`
	CacheHitRate float64            `json:"cache_hit_rate"`
	Violations   int64              `json:"violations"`
	Resources    *resourceReport    `json:"resources,omitempty"`
	Pruning      *pruningReport     `json:"pruning,omitempty"`
	Pagination   *paginationReport  `json:"pagination,omitempty"`
	Failover     *failoverReport    `json:"failover,omitempty"`
	ResultCache  *resultCacheReport `json:"result_cache,omitempty"`
	Machine      *machineReport     `json:"machine,omitempty"`
	GeneratedAt  string             `json:"generated_at"`
}

// failoverReport captures the -failover scenario: one replica of shard 0
// is killed once half the measured requests have completed, and the
// workload must finish with zero failed queries — reads fail over to the
// surviving replica (router /stats reliability counters confirm it).
type failoverReport struct {
	Replicas             int    `json:"replicas"`
	KilledReplica        string `json:"killed_replica"`
	FailedQueries        int64  `json:"failed_queries"`
	Failovers            uint64 `json:"failovers"`
	HedgesIssued         uint64 `json:"hedges_issued"`
	HedgesWon            uint64 `json:"hedges_won"`
	CursorReplicaResumes uint64 `json:"cursor_replica_resumes"`
}

// resultCacheReport records the router's ranked-result cache for the
// run, plus the probe that repeats one query and checks — through the
// per-replica request counters in /stats — that the repeat reached no
// shard at all.
type resultCacheReport struct {
	Hits               uint64  `json:"hits"`
	Misses             uint64  `json:"misses"`
	Stale              uint64  `json:"stale"`
	HitRate            float64 `json:"hit_rate"`
	VerifiedZeroFanout bool    `json:"verified_zero_fanout"`
}

// resourceReport is the service-side resource accounting for the whole
// run (warm-up included — it is the daemon's lifetime view), read from
// /stats after the measured window. CursorPinnedBytesMax is the largest
// single-cursor suspended-state footprint seen (0 for the router, which
// holds no engine cursor state itself).
type resourceReport struct {
	RowsScanned          int64 `json:"rows_scanned"`
	TuplesMaterialized   int64 `json:"tuples_materialized"`
	CursorPinnedBytesMax int64 `json:"cursor_pinned_bytes_max"`
}

// paginationReport captures the -paginate scenario: cursor throughput
// plus the enumeration-cost comparison against a single deep top-k run
// and against naive re-execution paging.
type paginationReport struct {
	Pages       int     `json:"pages"`
	PageSize    int     `json:"page_size"`
	Sessions    int     `json:"sessions"`
	PagesPerSec float64 `json:"pages_per_sec"`
	// CursorTuples is the cumulative tuples_scanned after pulling all
	// pages through one suspended cursor; OneShotTuples is the same
	// counter for a single top-(pages*page_size) run; NaiveTuples sums
	// re-running the query with a deeper LIMIT for every page.
	CursorTuples    int64   `json:"cursor_tuples_scanned"`
	OneShotTuples   int64   `json:"one_shot_tuples_scanned"`
	NaiveTuples     int64   `json:"naive_tuples_scanned"`
	CursorVsOneShot float64 `json:"cursor_vs_one_shot"`
	NaiveVsOneShot  float64 `json:"naive_vs_one_shot"`
}

// pruningReport captures the router's threshold-merge effectiveness for
// the benchmarked workload.
type pruningReport struct {
	QueriesWithPrunedShards uint64  `json:"queries_with_pruned_shards"`
	ShardsPrunedTotal       uint64  `json:"shards_pruned_total"`
	RefillsTotal            uint64  `json:"refills_total"`
	FetchAmplification      float64 `json:"fetch_amplification"`
}

// writeReport writes the benchmark report as indented JSON. A missing
// -json path is a no-op so the human-readable output stands alone.
func writeReport(path string, r *benchReport) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatalf("bench: encoding report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("bench: writing %s: %v", path, err)
	}
	fmt.Printf("\nreport written to %s\n", path)
}

// validateReport checks that a benchmark report file conforms to the
// benchReport schema, for the CI bench smoke lane.
func validateReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if r.Mode != "single" && r.Mode != "router" {
		return fmt.Errorf("mode = %q, want single or router", r.Mode)
	}
	if r.Mode == "router" {
		if r.Shards < 1 {
			return fmt.Errorf("router report has shards = %d", r.Shards)
		}
		if r.Pruning == nil {
			return fmt.Errorf("router report missing pruning block")
		}
	}
	if r.Requests < 1 || r.Concurrency < 1 || r.K < 1 {
		return fmt.Errorf("requests/concurrency/k must be >= 1 (got %d, %d, %d)", r.Requests, r.Concurrency, r.K)
	}
	if r.QPS <= 0 || r.ElapsedSec <= 0 {
		return fmt.Errorf("qps and elapsed_sec must be positive (got %.2f, %.2f)", r.QPS, r.ElapsedSec)
	}
	if r.Latency.Count == 0 {
		return fmt.Errorf("latency_ms.count is zero")
	}
	if r.Latency.P50MS < 0 || r.Latency.P50MS > r.Latency.P95MS+1e-9 || r.Latency.P95MS > r.Latency.P99MS+1e-9 {
		return fmt.Errorf("latency percentiles not monotone: p50=%.3f p95=%.3f p99=%.3f",
			r.Latency.P50MS, r.Latency.P95MS, r.Latency.P99MS)
	}
	if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
		return fmt.Errorf("cache_hit_rate = %.3f, want within [0, 1]", r.CacheHitRate)
	}
	if r.Violations != 0 {
		return fmt.Errorf("report records %d ranking violations", r.Violations)
	}
	if m := r.Machine; m != nil {
		if m.CPUModel == "" || m.GoVersion == "" {
			return fmt.Errorf("machine block present but incomplete: cpu_model=%q go_version=%q", m.CPUModel, m.GoVersion)
		}
		if m.NumCPU < 1 || m.GOMAXPROCS < 1 {
			return fmt.Errorf("machine block has num_cpu=%d gomaxprocs=%d, want >= 1", m.NumCPU, m.GOMAXPROCS)
		}
	}
	if res := r.Resources; res != nil {
		if res.RowsScanned <= 0 {
			return fmt.Errorf("resources.rows_scanned = %d, want > 0 for a query workload", res.RowsScanned)
		}
		if res.TuplesMaterialized < 0 || res.CursorPinnedBytesMax < 0 {
			return fmt.Errorf("negative resource counters: materialized=%d pinned_max=%d",
				res.TuplesMaterialized, res.CursorPinnedBytesMax)
		}
	}
	if p := r.Pagination; p != nil {
		if p.Pages < 1 || p.PageSize < 1 || p.Sessions < 1 {
			return fmt.Errorf("pagination pages/page_size/sessions must be >= 1 (got %d, %d, %d)",
				p.Pages, p.PageSize, p.Sessions)
		}
		if p.PagesPerSec <= 0 {
			return fmt.Errorf("pagination pages_per_sec must be positive (got %.2f)", p.PagesPerSec)
		}
		if p.OneShotTuples <= 0 || p.CursorTuples <= 0 {
			return fmt.Errorf("pagination tuple counters must be positive (cursor=%d one_shot=%d)",
				p.CursorTuples, p.OneShotTuples)
		}
		// The point of resumable cursors: paging must cost about what a
		// single deep run costs, not re-enumerate per page. The router
		// gets slack for per-shard overfetch.
		limit := 1.2
		if r.Mode == "router" {
			limit = 1.5
		}
		if p.CursorVsOneShot > limit {
			return fmt.Errorf("cursor paging scanned %.2fx the tuples of a one-shot run (limit %.1fx)",
				p.CursorVsOneShot, limit)
		}
		if p.NaiveVsOneShot < 1 {
			return fmt.Errorf("naive_vs_one_shot = %.2f, want >= 1 (naive paging repeats work)", p.NaiveVsOneShot)
		}
	}
	if f := r.Failover; f != nil {
		if r.Mode != "router" {
			return fmt.Errorf("failover block on a %q report, want router", r.Mode)
		}
		if f.Replicas < 2 {
			return fmt.Errorf("failover.replicas = %d, want >= 2 (nothing to fail over to)", f.Replicas)
		}
		if f.FailedQueries != 0 {
			return fmt.Errorf("failover scenario recorded %d failed queries, want 0", f.FailedQueries)
		}
		if f.Failovers == 0 {
			return fmt.Errorf("failover scenario recorded no replica failovers")
		}
	}
	if rc := r.ResultCache; rc != nil {
		if rc.HitRate < 0 || rc.HitRate > 1 {
			return fmt.Errorf("result_cache.hit_rate = %.3f, want within [0, 1]", rc.HitRate)
		}
		if rc.Hits == 0 {
			return fmt.Errorf("result_cache block present but records zero hits")
		}
		if !rc.VerifiedZeroFanout {
			return fmt.Errorf("result cache hit was not verified fan-out-free")
		}
	}
	if _, err := time.Parse(time.RFC3339, r.GeneratedAt); err != nil {
		return fmt.Errorf("generated_at: %v", err)
	}
	return nil
}

// benchCluster is a self-hosted router deployment: base is the router's
// URL; kill shuts down shard 0's first replica (for the -failover
// scenario) and returns the killed replica's URL.
type benchCluster struct {
	base string
	kill func() string
}

// selfHostCluster spins up n in-process ranksqld shards — each as a
// group of identically-seeded replicas — on loopback ports, a router
// over them, and seeds the dataset through the router's partitioned,
// replica-fanned ingest.
func selfHostCluster(ctx context.Context, n, replicas int, dataset string, rows int) *benchCluster {
	quiet := func(string, ...interface{}) {}
	var shardSpecs []string
	killFirst := func() string { return "" }
	for i := 0; i < n; i++ {
		var urls []string
		for j := 0; j < replicas; j++ {
			db := ranksql.Open()
			if err := server.RegisterScorers(db, dataset); err != nil {
				log.Fatalf("bench: shard %d replica %d scorers: %v", i, j, err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatalf("bench: shard %d replica %d listen: %v", i, j, err)
			}
			url := "http://" + ln.Addr().String()
			// The -failover scenario kills shard 0's first replica by
			// canceling its context; the canceled replica's server exit is
			// deliberate, not fatal.
			srvCtx := ctx
			if i == 0 && j == 0 {
				var cancel context.CancelFunc
				srvCtx, cancel = context.WithCancel(ctx)
				killFirst = func() string {
					cancel()
					ln.Close()
					return url
				}
			}
			srv := server.New(db, server.WithLogger(quiet))
			go func(i, j int, sctx context.Context) {
				if err := srv.ServeListener(sctx, ln); err != nil && sctx.Err() == nil {
					log.Fatalf("bench: shard %d replica %d: %v", i, j, err)
				}
			}(i, j, srvCtx)
			urls = append(urls, url)
		}
		shardSpecs = append(shardSpecs, strings.Join(urls, ","))
	}
	rt, err := router.New(shardSpecs, router.WithLogger(quiet))
	if err != nil {
		log.Fatalf("bench: router: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("bench: router listen: %v", err)
	}
	go func() {
		if err := rt.ServeListener(ctx, ln); err != nil {
			log.Fatalf("bench: router: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	waitHealthy(base)
	if err := router.SeedVia(nil, base, dataset, rows); err != nil {
		log.Fatalf("bench: seeding via router: %v", err)
	}
	return &benchCluster{base: base, kill: killFirst}
}

// measureResultCache repeats one fixed-bindings query against the
// router and verifies — via the per-replica request counters /stats
// exposes — that the repeat was a ranked-result-cache hit that reached
// no shard, then records the cache's run-wide counters.
func measureResultCache(base, queryTemplate string, gen paramGenerator, k int) (*resultCacheReport, error) {
	rng := server.NewRng(0xC0FFEE)
	params := gen.query(&rng, k)
	c := &benchClient{base: base, http: &http.Client{Timeout: 30 * time.Second}}
	probe := func() (*benchQueryResponse, error) {
		var out benchQueryResponse
		if err := c.post("/query", map[string]interface{}{"sql": queryTemplate, "params": params}, &out); err != nil {
			return nil, err
		}
		if out.Error != "" {
			return nil, fmt.Errorf("probe query: %s", out.Error)
		}
		return &out, nil
	}
	replicaRequests := func() (uint64, error) {
		var s router.Snapshot
		if err := getJSON(base+"/stats", &s); err != nil {
			return 0, err
		}
		var total uint64
		for _, sh := range s.ShardHealth {
			for _, rep := range sh.Replicas {
				total += rep.Requests
			}
		}
		return total, nil
	}
	if _, err := probe(); err != nil { // mint (or refresh) the cache entry
		return nil, err
	}
	before, err := replicaRequests()
	if err != nil {
		return nil, err
	}
	hit, err := probe()
	if err != nil {
		return nil, err
	}
	after, err := replicaRequests()
	if err != nil {
		return nil, err
	}
	var stats router.Snapshot
	if err := getJSON(base+"/stats", &stats); err != nil {
		return nil, err
	}
	r := &resultCacheReport{VerifiedZeroFanout: hit.ResultCacheHit && after == before}
	if stats.ResultCache != nil {
		r.Hits = stats.ResultCache.Hits
		r.Misses = stats.ResultCache.Misses
		r.Stale = stats.ResultCache.Stale
		r.HitRate = stats.ResultCache.HitRate
	}
	return r, nil
}

// waitHealthy polls /healthz until the service answers (the listeners
// above are bound before their HTTP servers attach).
func waitHealthy(base string) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("bench: %s did not become healthy within 5s", base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// benchWorkload returns the prepared query/insert templates and parameter
// generator for a dataset.
func benchWorkload(dataset string) (query, insert string, gen paramGenerator) {
	switch dataset {
	case "tripplanner":
		return `SELECT h.name, r.name FROM hotel AS h, restaurant AS r
				WHERE h.addr = r.addr AND h.price < ?
				ORDER BY cheap(h.price) + cheap(r.price) LIMIT ?`,
			`INSERT INTO hotel VALUES (?, ?, ?)`,
			paramGenerator{
				query: func(r *server.Rng, k int) []interface{} {
					return []interface{}{100 + r.Float()*400, k}
				},
				insert: func(r *server.Rng, worker, i int) []interface{} {
					return []interface{}{fmt.Sprintf("Bench-Hotel-%d-%d", worker, i), 30 + r.Float()*470, r.Intn(50)}
				},
			}
	default: // webshop
		return `SELECT name, price, stars, sales FROM product
				WHERE in_stock AND price < ?
				ORDER BY 0.5*rating(stars) + 0.3*popular(sales) + 0.2*bargain(price) LIMIT ?`,
			`INSERT INTO product VALUES (?, ?, ?, ?, ?)`,
			paramGenerator{
				query: func(r *server.Rng, k int) []interface{} {
					return []interface{}{50 + r.Float()*450, k}
				},
				insert: func(r *server.Rng, worker, i int) []interface{} {
					return []interface{}{fmt.Sprintf("BENCH-%d-%d", worker, i),
						5 + r.Float()*495, 1 + 4*r.Float(), r.Intn(100000), true}
				},
			}
	}
}

type paramGenerator struct {
	query  func(r *server.Rng, k int) []interface{}
	insert func(r *server.Rng, worker, i int) []interface{}
}

// templateVariant derives the j-th distinct-but-equivalent statement
// shape from a dataset's base template by injecting an always-true
// predicate whose literal embeds j: each variant normalizes to its own
// template, so -templates N mints N plan-cache entries from one
// workload. Variant 0 is the base template itself, keeping single-
// template runs comparable with older baselines.
func templateVariant(dataset, base string, j int) string {
	if j == 0 {
		return base
	}
	var pred string
	switch dataset {
	case "tripplanner":
		pred = fmt.Sprintf("h.price > 0.%03d", j%1000) // prices start at 30
	default: // webshop
		pred = fmt.Sprintf("stars >= 0.%03d", j%1000) // stars start at 1
	}
	return strings.Replace(base, "WHERE ", "WHERE "+pred+" AND ", 1)
}

// paginationOutcome is one worker cursor session's tally.
type paginationOutcome struct {
	pages      int
	violations int
	cacheHit   bool
}

// paginateSession opens a ranked cursor, pulls up to pages pages of k
// rows through /cursor/next, verifies the paged stream looks exactly
// like one contiguous ranked run (scores non-increasing across page
// boundaries, ranks consecutive from 1), and closes the cursor. Each
// page's latency enters the histogram individually.
func (c *benchClient) paginateSession(sessionID, stmtID string, params []interface{}, k, pages int, hist *obs.Histogram) (paginationOutcome, error) {
	var out paginationOutcome
	lastScore := math.Inf(1)
	nextRank := 1
	check := func(r *benchQueryResponse) {
		if len(r.Rows) > k {
			out.violations++
		}
		for _, s := range r.Scores {
			if s > lastScore+1e-9 {
				out.violations++
			}
			lastScore = s
		}
		for _, rk := range r.Ranks {
			if rk != nextRank {
				out.violations++
			}
			nextRank = rk + 1
		}
	}
	t0 := time.Now()
	resp, err := c.queryCursor(sessionID, stmtID, params, k)
	if err != nil {
		return out, err
	}
	hist.ObserveDuration(time.Since(t0))
	if resp.CursorID == "" {
		return out, fmt.Errorf("cursor open returned no cursor_id")
	}
	out.pages++
	out.cacheHit = resp.CacheHit
	check(resp)
	for p := 1; p < pages && !resp.Exhausted; p++ {
		t0 = time.Now()
		if resp, err = c.cursorNext(resp.CursorID, k); err != nil {
			return out, err
		}
		hist.ObserveDuration(time.Since(t0))
		out.pages++
		check(resp)
	}
	return out, c.cursorClose(resp.CursorID)
}

// measurePagination compares the enumeration cost (tuples_scanned) of
// three ways to read pages*k ranked rows with identical parameters: a
// suspended cursor pulling k-row pages, one deep top-(pages*k) run, and
// the naive client strategy of re-running with a deeper LIMIT per page.
// Cursor stats are cumulative, so the final page's counter is the whole
// stream's cost.
func measurePagination(base, queryTemplate string, gen paramGenerator, k, pages int) (*paginationReport, error) {
	c := &benchClient{base: base, http: &http.Client{Timeout: 60 * time.Second}}
	sessionID, err := c.openSession()
	if err != nil {
		return nil, err
	}
	stmtID, err := c.prepare(sessionID, queryTemplate)
	if err != nil {
		return nil, err
	}
	rng := server.NewRng(0xC0FFEE)
	params := gen.query(&rng, k) // the LIMIT occupies the last slot
	limitAt := len(params) - 1
	withLimit := func(n int) []interface{} {
		return append(append([]interface{}{}, params[:limitAt]...), n)
	}

	resp, err := c.queryCursor(sessionID, stmtID, params, k)
	if err != nil {
		return nil, fmt.Errorf("cursor open: %w", err)
	}
	cursorTuples := resp.Stats.TuplesScanned
	for p := 1; p < pages && !resp.Exhausted; p++ {
		if resp, err = c.cursorNext(resp.CursorID, k); err != nil {
			return nil, fmt.Errorf("cursor page %d: %w", p+1, err)
		}
		cursorTuples = resp.Stats.TuplesScanned
	}
	if err := c.cursorClose(resp.CursorID); err != nil {
		return nil, fmt.Errorf("cursor close: %w", err)
	}

	one, err := c.query(sessionID, stmtID, withLimit(pages*k))
	if err != nil {
		return nil, fmt.Errorf("one-shot run: %w", err)
	}

	var naiveTuples int64
	for p := 1; p <= pages; p++ {
		r, err := c.query(sessionID, stmtID, withLimit(p*k))
		if err != nil {
			return nil, fmt.Errorf("naive page %d: %w", p, err)
		}
		naiveTuples += r.Stats.TuplesScanned
	}

	pr := &paginationReport{
		Pages:         pages,
		PageSize:      k,
		CursorTuples:  cursorTuples,
		OneShotTuples: one.Stats.TuplesScanned,
		NaiveTuples:   naiveTuples,
	}
	if pr.OneShotTuples > 0 {
		pr.CursorVsOneShot = float64(pr.CursorTuples) / float64(pr.OneShotTuples)
		pr.NaiveVsOneShot = float64(pr.NaiveTuples) / float64(pr.OneShotTuples)
	}
	return pr, nil
}

// benchClient is a minimal ranksqld protocol client.
type benchClient struct {
	base string
	http *http.Client
}

type benchQueryResponse struct {
	Rows     [][]interface{} `json:"rows"`
	Scores   []float64       `json:"scores"`
	Ranks    []int           `json:"ranks"`
	CacheHit bool            `json:"cache_hit"`
	// ResultCacheHit is router-only: the answer came from the router's
	// ranked-result cache with zero shard fan-out.
	ResultCacheHit bool   `json:"result_cache_hit"`
	Exhausted      bool   `json:"exhausted"`
	CursorID       string `json:"cursor_id"`
	Stats          struct {
		TuplesScanned int64 `json:"tuples_scanned"`
	} `json:"stats"`
	Error string `json:"error"`
}

func (c *benchClient) openSession() (string, error) {
	var out struct {
		SessionID string `json:"session_id"`
		Error     string `json:"error"`
	}
	if err := c.post("/session", map[string]interface{}{}, &out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("%s", out.Error)
	}
	return out.SessionID, nil
}

func (c *benchClient) prepare(sessionID, sql string) (string, error) {
	var out struct {
		StmtID string `json:"stmt_id"`
		Error  string `json:"error"`
	}
	if err := c.post("/prepare", map[string]interface{}{"session_id": sessionID, "sql": sql}, &out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("%s", out.Error)
	}
	return out.StmtID, nil
}

func (c *benchClient) query(sessionID, stmtID string, params []interface{}) (*benchQueryResponse, error) {
	var out benchQueryResponse
	req := map[string]interface{}{"session_id": sessionID, "stmt_id": stmtID, "params": params}
	if err := c.post("/query", req, &out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("%s", out.Error)
	}
	return &out, nil
}

// queryCursor opens a ranked cursor over a prepared statement and
// returns its first page (carrying the cursor_id for cursorNext).
func (c *benchClient) queryCursor(sessionID, stmtID string, params []interface{}, fetch int) (*benchQueryResponse, error) {
	var out benchQueryResponse
	req := map[string]interface{}{
		"session_id": sessionID, "stmt_id": stmtID, "params": params,
		"cursor": true, "fetch": fetch,
	}
	if err := c.post("/query", req, &out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("%s", out.Error)
	}
	return &out, nil
}

// cursorNext pulls the next page of a suspended ranked cursor.
func (c *benchClient) cursorNext(cursorID string, fetch int) (*benchQueryResponse, error) {
	var out benchQueryResponse
	req := map[string]interface{}{"cursor_id": cursorID, "fetch": fetch}
	if err := c.post("/cursor/next", req, &out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("%s", out.Error)
	}
	if out.CursorID == "" {
		out.CursorID = cursorID
	}
	return &out, nil
}

// cursorClose releases a ranked cursor.
func (c *benchClient) cursorClose(cursorID string) error {
	var out struct {
		Error string `json:"error"`
	}
	if err := c.post("/cursor/close", map[string]interface{}{"cursor_id": cursorID}, &out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("%s", out.Error)
	}
	return nil
}

func (c *benchClient) exec(sessionID, stmtID string, params []interface{}) error {
	var out struct {
		Error string `json:"error"`
	}
	req := map[string]interface{}{"session_id": sessionID, "stmt_id": stmtID, "params": params}
	if err := c.post("/exec", req, &out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("%s", out.Error)
	}
	return nil
}

func (c *benchClient) post(path string, req, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
