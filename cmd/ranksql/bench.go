package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ranksql"
	"ranksql/internal/router"
	"ranksql/internal/server"
)

// runBench is the `ranksql bench` load generator: it drives a ranksqld
// service over HTTP with prepared top-k statements under concurrency,
// verifies ranked results, and reports throughput, latency percentiles
// and plan-cache effectiveness. With no -addr it self-hosts an in-process
// daemon seeded with an example dataset, so the whole service path —
// HTTP, sessions, prepared statements, plan cache, concurrent engine —
// is exercised end to end with one command.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "", "target ranksqld base URL (empty = self-hosted in-process server)")
	dataset := fs.String("seed", "webshop", "dataset for the self-hosted server: webshop or tripplanner")
	rows := fs.Int("rows", 20000, "seeded base-table row count (self-hosted)")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	requests := fs.Int("requests", 2000, "total query requests")
	k := fs.Int("k", 10, "top-k bound per query")
	writeEvery := fs.Int("write-every", 0, "per worker, issue an INSERT every N queries (0 = read-only)")
	routerMode := fs.Bool("router", false, "drive a sharded cluster: self-host -shards in-process ranksqld shards behind a router (or treat -addr as a router)")
	numShards := fs.Int("shards", 2, "shard count for the self-hosted router cluster")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *concurrency < 1 || *requests < 1 || *k < 1 {
		log.Fatalf("bench: -concurrency, -requests and -k must be >= 1 (got %d, %d, %d)", *concurrency, *requests, *k)
	}

	base := *addr
	if base == "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if *routerMode {
			base = selfHostCluster(ctx, *numShards, *dataset, *rows)
			fmt.Printf("self-hosted router at %s over %d shards (%s, %d rows partitioned)\n",
				base, *numShards, *dataset, *rows)
		} else {
			// Self-host a daemon on a loopback port.
			db := ranksql.Open()
			if err := server.Seed(db, *dataset, *rows); err != nil {
				log.Fatalf("bench: seeding: %v", err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatalf("bench: listen: %v", err)
			}
			srv := server.New(db, server.WithLogger(func(string, ...interface{}) {}))
			go func() {
				if err := srv.ServeListener(ctx, ln); err != nil {
					log.Fatalf("bench: server: %v", err)
				}
			}()
			base = "http://" + ln.Addr().String()
			fmt.Printf("self-hosted ranksqld at %s (%s, %d rows)\n", base, *dataset, *rows)
		}
	}

	queryTemplate, insertTemplate, paramGen := benchWorkload(*dataset)
	fmt.Printf("template: %s\n", queryTemplate)
	fmt.Printf("%d requests, %d workers, k=%d", *requests, *concurrency, *k)
	if *writeEvery > 0 {
		fmt.Printf(", 1 INSERT per %d queries per worker", *writeEvery)
	}
	fmt.Println()

	var (
		done       int64
		cacheHits  int64
		violations int64
		writes     int64
		mu         sync.Mutex
		latencies  []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	// Distribute requests across workers, spreading the remainder so
	// -requests is honored exactly.
	perWorker, extra := *requests / *concurrency, *requests%*concurrency
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			quota := perWorker
			if worker < extra {
				quota++
			}
			c := &benchClient{base: base, http: &http.Client{Timeout: 30 * time.Second}}
			sessionID, err := c.openSession()
			if err != nil {
				log.Fatalf("bench: worker %d: session: %v", worker, err)
			}
			stmtID, err := c.prepare(sessionID, queryTemplate)
			if err != nil {
				log.Fatalf("bench: worker %d: prepare: %v", worker, err)
			}
			insertID := ""
			if *writeEvery > 0 {
				if insertID, err = c.prepare(sessionID, insertTemplate); err != nil {
					log.Fatalf("bench: worker %d: prepare insert: %v", worker, err)
				}
			}
			rng := server.NewRng(uint64(worker)*0x9E3779B97F4A7C15 + 1)
			var local []time.Duration
			for i := 0; i < quota; i++ {
				if *writeEvery > 0 && i%*writeEvery == *writeEvery-1 {
					if err := c.exec(sessionID, insertID, paramGen.insert(&rng, worker, i)); err != nil {
						log.Fatalf("bench: worker %d: insert: %v", worker, err)
					}
					atomic.AddInt64(&writes, 1)
				}
				params := paramGen.query(&rng, *k)
				t0 := time.Now()
				resp, err := c.query(sessionID, stmtID, params)
				if err != nil {
					log.Fatalf("bench: worker %d: query: %v", worker, err)
				}
				local = append(local, time.Since(t0))
				atomic.AddInt64(&done, 1)
				if resp.CacheHit {
					atomic.AddInt64(&cacheHits, 1)
				}
				// Verify the ranked contract: at most k rows, scores
				// non-increasing.
				if len(resp.Rows) > *k {
					atomic.AddInt64(&violations, 1)
				}
				for j := 1; j < len(resp.Scores); j++ {
					if resp.Scores[j] > resp.Scores[j-1]+1e-9 {
						atomic.AddInt64(&violations, 1)
						break
					}
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	total := atomic.LoadInt64(&done)
	if total == 0 {
		fmt.Println("no requests issued (check -requests/-concurrency)")
		os.Exit(1)
	}
	fmt.Printf("\n== results ==\n")
	fmt.Printf("queries    %d (+%d inserts) in %.2fs  ->  %.0f qps\n",
		total, atomic.LoadInt64(&writes), elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Printf("latency    p50=%v  p95=%v  p99=%v  max=%v\n", pct(0.50), pct(0.95), pct(0.99), pct(1.0))
	fmt.Printf("plan cache %d/%d client-observed hits (%.1f%%)\n",
		atomic.LoadInt64(&cacheHits), total, 100*float64(atomic.LoadInt64(&cacheHits))/float64(total))
	if v := atomic.LoadInt64(&violations); v > 0 {
		fmt.Printf("RANKING VIOLATIONS: %d\n", v)
		os.Exit(1)
	}
	fmt.Println("ranking    all responses correctly ordered, |rows| <= k")

	// Server-side view.
	if *routerMode {
		var stats router.Snapshot
		if err := getJSON(base+"/stats", &stats); err != nil {
			log.Fatalf("bench: stats: %v", err)
		}
		fmt.Printf("\n== router /stats ==\n")
		fmt.Printf("shards=%d queries=%d execs=%d errors=%d avg=%.2fms\n",
			stats.Shards, stats.Queries, stats.Execs, stats.Errors, stats.AvgQueryMS)
		fmt.Printf("threshold merge: %d/%d queries pruned >=1 shard (%d shard fetches skipped), refills=%d\n",
			stats.QueriesWithPrunedShards, stats.Queries, stats.ShardsPrunedTotal, stats.RefillsTotal)
		fmt.Printf("fetch amplification: %.2f rows fetched per row returned (%d/%d)\n",
			stats.FetchAmplification, stats.RowsFetchedTotal, stats.RowsReturnedTotal)
		for _, q := range stats.PerQuery {
			fmt.Printf("  %6d× pruned=%d refills=%d avg=%.2fms  %s\n",
				q.Count, q.ShardsPruned, q.Refills, q.AvgMS, truncate(q.Query, 80))
		}
		return
	}
	var stats server.Snapshot
	if err := getJSON(base+"/stats", &stats); err != nil {
		log.Fatalf("bench: stats: %v", err)
	}
	fmt.Printf("\n== server /stats ==\n")
	fmt.Printf("queries=%d execs=%d errors=%d qps(recent)=%.0f avg=%.2fms\n",
		stats.Queries, stats.Execs, stats.Errors, stats.QPS, stats.AvgQueryMS)
	fmt.Printf("plan cache: hits=%d misses=%d entries=%d hit_rate=%.1f%%\n",
		stats.PlanCache.Hits, stats.PlanCache.Misses, stats.PlanCache.Entries, 100*stats.PlanCache.HitRate)
	for _, q := range stats.PerQuery {
		fmt.Printf("  %6d× avg_depth_k=%.1f max_depth_k=%d avg=%.2fms  %s\n",
			q.Count, q.AvgDepthK, q.MaxDepthK, q.AvgMS, truncate(q.Query, 80))
	}
}

// selfHostCluster spins up n in-process ranksqld shards on loopback
// ports, a router over them, and seeds the dataset through the router's
// partitioned ingest, returning the router's base URL.
func selfHostCluster(ctx context.Context, n int, dataset string, rows int) string {
	quiet := func(string, ...interface{}) {}
	var shardURLs []string
	for i := 0; i < n; i++ {
		db := ranksql.Open()
		if err := server.RegisterScorers(db, dataset); err != nil {
			log.Fatalf("bench: shard %d scorers: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("bench: shard %d listen: %v", i, err)
		}
		srv := server.New(db, server.WithLogger(quiet))
		go func(i int) {
			if err := srv.ServeListener(ctx, ln); err != nil {
				log.Fatalf("bench: shard %d: %v", i, err)
			}
		}(i)
		shardURLs = append(shardURLs, "http://"+ln.Addr().String())
	}
	rt, err := router.New(shardURLs, router.WithLogger(quiet))
	if err != nil {
		log.Fatalf("bench: router: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("bench: router listen: %v", err)
	}
	go func() {
		if err := rt.ServeListener(ctx, ln); err != nil {
			log.Fatalf("bench: router: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	waitHealthy(base)
	if err := router.SeedVia(nil, base, dataset, rows); err != nil {
		log.Fatalf("bench: seeding via router: %v", err)
	}
	return base
}

// waitHealthy polls /healthz until the service answers (the listeners
// above are bound before their HTTP servers attach).
func waitHealthy(base string) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("bench: %s did not become healthy within 5s", base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// benchWorkload returns the prepared query/insert templates and parameter
// generator for a dataset.
func benchWorkload(dataset string) (query, insert string, gen paramGenerator) {
	switch dataset {
	case "tripplanner":
		return `SELECT h.name, r.name FROM hotel AS h, restaurant AS r
				WHERE h.addr = r.addr AND h.price < ?
				ORDER BY cheap(h.price) + cheap(r.price) LIMIT ?`,
			`INSERT INTO hotel VALUES (?, ?, ?)`,
			paramGenerator{
				query: func(r *server.Rng, k int) []interface{} {
					return []interface{}{100 + r.Float()*400, k}
				},
				insert: func(r *server.Rng, worker, i int) []interface{} {
					return []interface{}{fmt.Sprintf("Bench-Hotel-%d-%d", worker, i), 30 + r.Float()*470, r.Intn(50)}
				},
			}
	default: // webshop
		return `SELECT name, price, stars, sales FROM product
				WHERE in_stock AND price < ?
				ORDER BY 0.5*rating(stars) + 0.3*popular(sales) + 0.2*bargain(price) LIMIT ?`,
			`INSERT INTO product VALUES (?, ?, ?, ?, ?)`,
			paramGenerator{
				query: func(r *server.Rng, k int) []interface{} {
					return []interface{}{50 + r.Float()*450, k}
				},
				insert: func(r *server.Rng, worker, i int) []interface{} {
					return []interface{}{fmt.Sprintf("BENCH-%d-%d", worker, i),
						5 + r.Float()*495, 1 + 4*r.Float(), r.Intn(100000), true}
				},
			}
	}
}

type paramGenerator struct {
	query  func(r *server.Rng, k int) []interface{}
	insert func(r *server.Rng, worker, i int) []interface{}
}

// benchClient is a minimal ranksqld protocol client.
type benchClient struct {
	base string
	http *http.Client
}

type benchQueryResponse struct {
	Rows     [][]interface{} `json:"rows"`
	Scores   []float64       `json:"scores"`
	CacheHit bool            `json:"cache_hit"`
	Error    string          `json:"error"`
}

func (c *benchClient) openSession() (string, error) {
	var out struct {
		SessionID string `json:"session_id"`
		Error     string `json:"error"`
	}
	if err := c.post("/session", map[string]interface{}{}, &out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("%s", out.Error)
	}
	return out.SessionID, nil
}

func (c *benchClient) prepare(sessionID, sql string) (string, error) {
	var out struct {
		StmtID string `json:"stmt_id"`
		Error  string `json:"error"`
	}
	if err := c.post("/prepare", map[string]interface{}{"session_id": sessionID, "sql": sql}, &out); err != nil {
		return "", err
	}
	if out.Error != "" {
		return "", fmt.Errorf("%s", out.Error)
	}
	return out.StmtID, nil
}

func (c *benchClient) query(sessionID, stmtID string, params []interface{}) (*benchQueryResponse, error) {
	var out benchQueryResponse
	req := map[string]interface{}{"session_id": sessionID, "stmt_id": stmtID, "params": params}
	if err := c.post("/query", req, &out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("%s", out.Error)
	}
	return &out, nil
}

func (c *benchClient) exec(sessionID, stmtID string, params []interface{}) error {
	var out struct {
		Error string `json:"error"`
	}
	req := map[string]interface{}{"session_id": sessionID, "stmt_id": stmtID, "params": params}
	if err := c.post("/exec", req, &out); err != nil {
		return err
	}
	if out.Error != "" {
		return fmt.Errorf("%s", out.Error)
	}
	return nil
}

func (c *benchClient) post(path string, req, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
