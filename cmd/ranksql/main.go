// Command ranksql is an interactive shell for the RankSQL engine, plus a
// load generator for the ranksqld daemon.
//
//	$ go run ./cmd/ranksql
//	ranksql> CREATE TABLE hotel (name TEXT, price FLOAT)
//	ranksql> INSERT INTO hotel VALUES ('Grand', 120), ('Budget', 40)
//	ranksql> SELECT name FROM hotel ORDER BY cheap(price) LIMIT 1
//
// Meta commands:
//
//	.tables              list tables
//	.scorers             list registered scorers
//	.load t file.csv     bulk-load a CSV file into table t
//	.timing on|off       toggle per-query timing
//	.explain <select>    show the optimized plan
//	.quit                exit
//
// SQL-level EXPLAIN works too, and EXPLAIN ANALYZE executes the query
// and prints the operator tree with per-operator rows, depth-k, wall
// time and call counts.
//
// The shell registers a few generic scorers at startup: cheap(x) =
// max(0, 1 - x/1000), high(x) = min(1, x/1000), close(x, y) =
// 1/(1+|x-y|/10), equal(x, y) = 1 if x = y else 0.
//
// Load generator mode (see bench.go):
//
//	$ go run ./cmd/ranksql bench -concurrency 8 -requests 2000
//	$ go run ./cmd/ranksql bench -addr http://localhost:7070
package main

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"ranksql"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	db := ranksql.Open()
	registerBuiltins(db)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	timing := false
	fmt.Println("RankSQL shell — type SQL, or .help")
	for {
		fmt.Print("ranksql> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if quit := meta(db, line, &timing); quit {
				return
			}
			continue
		}
		start := time.Now()
		runSQL(db, line)
		if timing {
			fmt.Printf("(%.3fs)\n", time.Since(start).Seconds())
		}
	}
}

func registerBuiltins(db *ranksql.DB) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
		return math.Max(0, 1-args[0].Float()/1000)
	}))
	must(db.RegisterScorer("high", func(args []ranksql.Value) float64 {
		return math.Min(1, args[0].Float()/1000)
	}))
	must(db.RegisterScorer("close", func(args []ranksql.Value) float64 {
		return 1 / (1 + math.Abs(args[0].Float()-args[1].Float())/10)
	}, ranksql.WithCost(2)))
	must(db.RegisterScorer("equal", func(args []ranksql.Value) float64 {
		if args[0].String() == args[1].String() {
			return 1
		}
		return 0
	}))
}

func meta(db *ranksql.DB, line string, timing *bool) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Println(".tables | .scorers | .load <table> <file.csv> | .timing on|off | .explain <select> | .quit")
	case ".timing":
		*timing = len(fields) > 1 && fields[1] == "on"
		fmt.Printf("timing %v\n", *timing)
	case ".tables":
		for _, t := range db.Tables() {
			fmt.Println(t)
		}
	case ".scorers":
		fmt.Println("cheap(x)  high(x)  close(x,y)  equal(x,y)  — plus any registered by .go code")
	case ".explain":
		plan, err := db.Explain(strings.TrimSpace(strings.TrimPrefix(line, ".explain")))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(plan)
	case ".load":
		if len(fields) != 3 {
			fmt.Println("usage: .load <table> <file.csv>")
			return false
		}
		if err := loadCSV(db, fields[1], fields[2]); err != nil {
			fmt.Println("error:", err)
		}
	default:
		fmt.Println("unknown meta command; try .help")
	}
	return false
}

// runSQL dispatches between DDL/DML and SELECT.
func runSQL(db *ranksql.DB, line string) {
	head := strings.ToLower(strings.Fields(line)[0])
	if head == "select" || head == "explain" {
		if head == "explain" {
			// EXPLAIN and EXPLAIN ANALYZE both flow through Query: the
			// former prints the optimized plan, the latter executes the
			// statement and prints the tree with per-operator rows,
			// depth-k, wall time and call counts.
			rows, err := db.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			for i := 0; i < rows.Len(); i++ {
				fmt.Println(rows.At(i)[0].Text())
			}
			return
		}
		rows, err := db.Query(line)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
		return
	}
	res, err := db.Exec(line)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	} else {
		fmt.Printf("%d row(s)\n", res.RowsAffected)
	}
}

func printRows(rows *ranksql.Rows) {
	fmt.Println(strings.Join(rows.Columns, " | "), "| score")
	for rows.Next() {
		cells := make([]string, 0, len(rows.Columns)+1)
		for _, v := range rows.Row() {
			cells = append(cells, v.String())
		}
		fmt.Printf("%s | %.4f\n", strings.Join(cells, " | "), rows.Score())
	}
	fmt.Printf("(%d rows; scanned %d tuples, %d predicate evals)\n",
		rows.Len(), rows.Stats.TuplesScanned, rows.Stats.PredEvals)
}

// loadCSV bulk-inserts a headerless CSV into an existing table, inferring
// literal types per cell (int, float, bool, text).
func loadCSV(db *ranksql.DB, table, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	n := 0
	var batch []string
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(batch, ", ")))
		batch = batch[:0]
		return err
	}
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		vals := make([]string, len(rec))
		for i, cell := range rec {
			vals[i] = literal(cell)
		}
		batch = append(batch, "("+strings.Join(vals, ", ")+")")
		n++
		if len(batch) == 500 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("loaded %d rows into %s\n", n, table)
	return nil
}

// literal quotes a CSV cell as a SQL literal.
func literal(cell string) string {
	c := strings.TrimSpace(cell)
	if _, err := strconv.ParseInt(c, 10, 64); err == nil {
		return c
	}
	if _, err := strconv.ParseFloat(c, 64); err == nil {
		return c
	}
	switch strings.ToLower(c) {
	case "true", "false", "null":
		return strings.ToLower(c)
	}
	return "'" + strings.ReplaceAll(c, "'", "''") + "'"
}
