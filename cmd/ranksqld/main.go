// Command ranksqld runs the RankSQL query daemon: a concurrent HTTP/JSON
// service with sessions, prepared statements and a rank-aware plan cache
// (see internal/server for the endpoint protocol).
//
//	$ go run ./cmd/ranksqld -addr :7070 -seed webshop -rows 20000
//
//	$ curl -s localhost:7070/query -d '{
//	    "sql": "SELECT name, price FROM product WHERE in_stock AND price < ? ORDER BY rating(stars) LIMIT ?",
//	    "params": [200, 5]}'
//	$ curl -s localhost:7070/stats
//
// The daemon shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"

	"ranksql"
	"ranksql/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	seed := flag.String("seed", "webshop", "example dataset to preload: webshop, tripplanner or none")
	rows := flag.Int("rows", 20000, "seeded base-table row count")
	cache := flag.Int("plan-cache", 0, "plan cache capacity (0 = engine default)")
	flag.Parse()

	db := ranksql.Open()
	if *cache > 0 {
		db.SetPlanCacheCapacity(*cache)
	}
	if err := server.Seed(db, *seed, *rows); err != nil {
		log.Fatalf("ranksqld: seeding %s: %v", *seed, err)
	}
	if *seed != "none" && *seed != "" {
		log.Printf("ranksqld: seeded %s dataset (%d rows), tables: %v", *seed, *rows, db.Tables())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := server.New(db).Serve(ctx, *addr); err != nil {
		log.Fatalf("ranksqld: %v", err)
	}
}
