// Command ranksqld runs the RankSQL query daemon: a concurrent HTTP/JSON
// service with sessions, prepared statements and a rank-aware plan cache
// (see internal/server for the endpoint protocol).
//
//	$ go run ./cmd/ranksqld -addr :7070 -seed webshop -rows 20000
//
//	$ curl -s localhost:7070/query -d '{
//	    "sql": "SELECT name, price FROM product WHERE in_stock AND price < ? ORDER BY rating(stars) LIMIT ?",
//	    "params": [200, 5]}'
//	$ curl -s localhost:7070/stats
//
// With -router it instead runs the sharding coordinator over a set of
// ranksqld backends (see internal/router): tables are hash-partitioned
// across the shards and top-k SELECTs are answered by a threshold-merge
// over the shards' ranked streams.
//
//	$ go run ./cmd/ranksqld -addr :7171 -seed none -scorers webshop   # x2 shards
//	$ go run ./cmd/ranksqld -addr :7172 -seed none -scorers webshop
//	$ go run ./cmd/ranksqld -router -shards localhost:7171,localhost:7172 \
//	      -addr :7070 -seed webshop -rows 20000
//
// The daemon shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ranksql"
	"ranksql/internal/router"
	"ranksql/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	seed := flag.String("seed", "webshop", "example dataset to preload: webshop, tripplanner or none")
	rows := flag.Int("rows", 20000, "seeded base-table row count")
	cache := flag.Int("plan-cache", 0, "plan cache capacity (0 = engine default)")
	scorers := flag.String("scorers", "", "register a dataset's scorers without seeding its data (comma-separated; for shard backends started with -seed none)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle-session expiry (0 = sessions never expire)")
	routerMode := flag.Bool("router", false, "run as a sharding coordinator over -shards instead of an embedded engine")
	shards := flag.String("shards", "", "shard base URLs (router mode): shards separated by ';', replicas of one shard by ',', e.g. a:7070,b:7070;c:7070,d:7070 (two shards, two replicas each); with no ';' each comma-separated URL is its own single-replica shard")
	hedgeDelay := flag.Duration("hedge-delay", 0, "router mode: issue a hedged read to a shard's next replica when the preferred one hasn't answered within this delay (0 = disabled)")
	resultCache := flag.Int("result-cache", 0, "router mode: ranked-result cache capacity in entries (0 = default, negative = disabled)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this threshold at Warn (0 = disabled), e.g. 250ms")
	profileEvery := flag.Int("profile-every", 0, "sample per-operator runtime profiles every N-th execution of a cached plan (0 = engine default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *routerMode {
		var ropts []router.Option
		if *pprofFlag {
			ropts = append(ropts, router.WithPprof())
		}
		if *slowQuery > 0 {
			ropts = append(ropts, router.WithSlowQueryThreshold(*slowQuery))
		}
		if *hedgeDelay > 0 {
			ropts = append(ropts, router.WithHedgeDelay(*hedgeDelay))
		}
		if *resultCache != 0 {
			ropts = append(ropts, router.WithResultCache(*resultCache))
		}
		runRouter(ctx, *addr, *shards, *seed, *rows, ropts)
		return
	}

	db := ranksql.Open()
	if *cache > 0 {
		db.SetPlanCacheCapacity(*cache)
	}
	if *profileEvery > 0 {
		db.SetProfileSampling(*profileEvery)
	}
	if err := server.Seed(db, *seed, *rows); err != nil {
		log.Fatalf("ranksqld: seeding %s: %v", *seed, err)
	}
	for _, ds := range strings.Split(*scorers, ",") {
		ds = strings.TrimSpace(ds)
		if ds == "" || strings.EqualFold(ds, *seed) { // seeding already registered them
			continue
		}
		if err := server.RegisterScorers(db, ds); err != nil {
			log.Fatalf("ranksqld: scorers %s: %v", ds, err)
		}
	}
	if *seed != "none" && *seed != "" {
		log.Printf("ranksqld: seeded %s dataset (%d rows), tables: %v", *seed, *rows, db.Tables())
	}

	var opts []server.Option
	if *sessionTTL > 0 {
		opts = append(opts, server.WithSessionTTL(*sessionTTL))
	}
	if *pprofFlag {
		opts = append(opts, server.WithPprof())
	}
	if *slowQuery > 0 {
		opts = append(opts, server.WithSlowQueryThreshold(*slowQuery))
	}
	if err := server.New(db, opts...).Serve(ctx, *addr); err != nil {
		log.Fatalf("ranksqld: %v", err)
	}
}

// runRouter serves the sharding coordinator: partition-aware DDL/DML
// fan-out plus threshold-merged top-k over the listed shard backends.
// With -seed it loads the dataset through its own partitioned ingest
// path once the listener is up (the shards receive only their rows).
func runRouter(ctx context.Context, addr, shardList, seed string, rows int, opts []router.Option) {
	// ';' separates shards, ',' separates a shard's replicas. Without a
	// ';' the legacy form — every comma-separated URL its own shard —
	// still applies, so existing single-replica invocations keep working.
	var urls []string
	groupSep := ","
	if strings.Contains(shardList, ";") {
		groupSep = ";"
	}
	for _, g := range strings.Split(shardList, groupSep) {
		if g = strings.TrimSpace(g); g != "" {
			urls = append(urls, g)
		}
	}
	rt, err := router.New(urls, opts...)
	if err != nil {
		log.Fatalf("ranksqld: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("ranksqld: %v", err)
	}
	if seed != "" && seed != "none" {
		base := "http://" + ln.Addr().String()
		if host, port, err := net.SplitHostPort(ln.Addr().String()); err == nil && (host == "::" || host == "0.0.0.0") {
			base = "http://127.0.0.1:" + port
		}
		go func() {
			// Wait for our own endpoint (and every shard behind it: the
			// router's /healthz is 200 only when all shards answer) before
			// ingesting through the front door. A failed seed leaves the
			// router serving — the operator can re-run the load — rather
			// than killing a healthy daemon from a goroutine.
			if err := seedWhenHealthy(base, seed, rows); err != nil {
				log.Printf("ranksqld-router: seeding %s failed: %v (are the shards up, with -scorers %s? re-seed via POST /exec + /load)", seed, err, seed)
				return
			}
			log.Printf("ranksqld-router: seeded %s dataset (%d rows) across %d shards", seed, rows, rt.NumShards())
		}()
	}
	if err := rt.ServeListener(ctx, ln); err != nil {
		log.Fatalf("ranksqld: %v", err)
	}
}

// seedWhenHealthy polls the router's /healthz (200 = router up and all
// shards answering) for up to 15s, then loads the dataset through the
// router's partitioned ingest.
func seedWhenHealthy(base, seed string, rows int) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster not healthy within 15s")
		}
		time.Sleep(100 * time.Millisecond)
	}
	return router.SeedVia(nil, base, seed, rows)
}
