// Command figures regenerates the paper's evaluation figures (§6):
//
//	Figure 12(a): execution time vs k          (plans 1-4)
//	Figure 12(b): execution time vs predicate cost c
//	Figure 12(c): execution time vs join selectivity j
//	Figure 12(d): execution time vs table size s (plan1 omitted at 1M)
//	Figure 13:    estimated vs real operator output cardinalities
//
// By default it runs at paper scale (s=100,000). Use -scale to shrink all
// sizes proportionally for a quick pass, e.g. -scale 0.1.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"ranksql/internal/bench"
	"ranksql/internal/workload"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 12a|12b|12c|12d|13|all")
		size    = flag.Int("size", 100000, "base table size s")
		k       = flag.Int("k", 10, "default result count k")
		joinSel = flag.Float64("j", 0.0001, "default join selectivity j")
		cost    = flag.Float64("c", 1, "default predicate cost c")
		spin    = flag.Int("spin", 200, "spin iterations per predicate cost unit (wall-clock realism)")
		scale   = flag.Float64("scale", 1.0, "scale factor applied to sizes and 1/j")
		seed    = flag.Uint64("seed", 1, "workload generator seed")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		maxMat  = flag.Float64("maxmat", 4e6, "skip plan1 cells whose sort input would exceed this many tuples (0 = never)")
		sample  = flag.Float64("sample", 0.001, "sampling ratio for figure 13's estimator (paper: 0.001)")
	)
	flag.Parse()

	base := workload.Config{
		Size:            int(float64(*size) * *scale),
		JoinSelectivity: *joinSel / *scale,
		PredCost:        *cost,
		K:               *k,
		BoolSelectivity: 0.4,
		Seed:            *seed,
	}
	if base.JoinSelectivity > 1 {
		base.JoinSelectivity = 1
	}
	opts := bench.SweepOpts{Base: base, Spin: *spin, MaxMaterialize: *maxMat}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	ok := true

	if run("12a") {
		ks := []int{1, 10, 100, 1000}
		s, err := bench.Figure12a(opts, ks)
		ok = report(s, err) && ok
	}
	if run("12b") {
		costs := []float64{0, 1, 10, 100, 1000}
		s, err := bench.Figure12b(opts, costs)
		ok = report(s, err) && ok
	}
	if run("12c") {
		sels := scaledSels([]float64{0.00001, 0.0001, 0.001}, *scale)
		s, err := bench.Figure12c(opts, sels)
		ok = report(s, err) && ok
	}
	if run("12d") {
		sizes := []int{
			int(10000 * *scale), int(100000 * *scale), int(1000000 * *scale),
		}
		o := opts
		o.SkipPlan1Above = int(100000 * *scale)
		s, err := bench.Figure12d(o, sizes)
		ok = report(s, err) && ok
	}
	if run("13") {
		opts13 := opts
		opts13.SampleRatio = *sample
		for _, p := range []bench.PlanID{bench.Plan3, bench.Plan4} {
			f, err := bench.Figure13(opts13, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure 13 %s: %v\n", p, err)
				ok = false
				continue
			}
			f.Fprint(os.Stdout)
			fmt.Printf("same-order-of-magnitude: %.0f%%\n\n", 100*f.AccurateFraction())
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func report(s *bench.Series, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure %s: %v\n", s.Figure, err)
		return false
	}
	s.Fprint(os.Stdout)
	fmt.Println(strings.Repeat("-", 68))
	return true
}

// scaledSels rescales the selectivity sweep so the distinct-value counts
// stay proportional under -scale.
func scaledSels(sels []float64, scale float64) []float64 {
	out := make([]float64, len(sels))
	for i, s := range sels {
		out[i] = math.Min(1, s/scale)
	}
	return out
}
