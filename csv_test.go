package ranksql_test

import (
	"bytes"
	"strings"
	"testing"

	"ranksql"
)

func TestLoadCSV(t *testing.T) {
	db := ranksql.Open()
	if _, err := db.Exec(`CREATE TABLE m (name TEXT, price FLOAT, qty INT, live BOOL)`); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
		return 1 - args[0].Float()/100
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE RANK INDEX ON m (cheap(price))`); err != nil {
		t.Fatal(err)
	}

	csvData := `name,price,qty,live
widget,10.5,3,true
gadget,99,7,false
gizmo,,1,true
`
	n, err := db.LoadCSV("m", strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows, want 3", n)
	}
	rows, err := db.Query(`SELECT name, price FROM m WHERE live ORDER BY cheap(price) LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	// The scorer sees gizmo's NULL price as 0.0 → score 1.0, so it
	// legitimately ranks first; widget (10.5) second.
	if rows.Len() != 2 || rows.At(0)[0].Text() != "gizmo" || rows.At(1)[0].Text() != "widget" {
		t.Errorf("top-2 after CSV load = %v, %v", rows.At(0), rows.At(1))
	}
	all, err := db.Query(`SELECT name FROM m WHERE price IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 1 || all.At(0)[0].Text() != "gizmo" {
		t.Errorf("NULL cell handling: %v", all)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := ranksql.Open()
	if _, err := db.Exec(`CREATE TABLE m (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("missing", strings.NewReader("1\n"), false); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.LoadCSV("m", strings.NewReader("notanint\n"), false); err == nil {
		t.Error("bad cell accepted")
	}
	if _, err := db.LoadCSV("m", strings.NewReader("1,2\n"), false); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestDumpCSV(t *testing.T) {
	db := ranksql.Open()
	if _, err := db.Exec(`CREATE TABLE m (a INT, b TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO m VALUES (1, 'x'), (2, 'y')`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT a, b FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ranksql.DumpCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "m.a,m.b\n") {
		t.Errorf("header = %q", out)
	}
	if !strings.Contains(out, "1,x") || !strings.Contains(out, "2,y") {
		t.Errorf("rows missing: %q", out)
	}
}

func TestDropTable(t *testing.T) {
	db := ranksql.Open()
	if _, err := db.Exec(`CREATE TABLE m (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DROP TABLE m`); err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 0 {
		t.Error("table survived drop")
	}
	if _, err := db.Exec(`DROP TABLE m`); err == nil {
		t.Error("double drop accepted")
	}
}
