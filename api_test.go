package ranksql_test

import (
	"math"
	"strings"
	"testing"

	"ranksql"
)

func demoAPI(t *testing.T) *ranksql.DB {
	t.Helper()
	db := ranksql.Open()
	steps := []string{
		`CREATE TABLE city (name TEXT, pop INT, rent FLOAT, sunny BOOL)`,
		`INSERT INTO city VALUES
			('Springfield', 160000, 900.5, false),
			('Shelbyville', 120000, 850.0, true),
			('Ogdenville',   80000, 700.0, true),
			('Capital',     900000, 1800.0, false)`,
	}
	for _, s := range steps {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if err := db.RegisterScorer("affordable", func(args []ranksql.Value) float64 {
		return math.Max(0, 1-args[0].Float()/2000)
	}, ranksql.WithCost(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterScorer("big", func(args []ranksql.Value) float64 {
		return math.Min(1, args[0].Float()/1e6)
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIBasics(t *testing.T) {
	db := demoAPI(t)
	rows, err := db.Query(`SELECT name, rent FROM city WHERE sunny ORDER BY affordable(rent) LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if got := rows.At(0)[0].Text(); got != "Ogdenville" {
		t.Errorf("top = %q, want Ogdenville", got)
	}
	// Cursor interface.
	n := 0
	var prev = math.Inf(1)
	for rows.Next() {
		n++
		if rows.Score() > prev {
			t.Error("scores not descending")
		}
		prev = rows.Score()
		if len(rows.Row()) != 2 {
			t.Error("row width")
		}
	}
	if n != 2 {
		t.Errorf("cursor visited %d", n)
	}
	if rows.Stats.PredEvals == 0 {
		t.Error("stats not populated")
	}
}

func TestPublicAPIValueConversions(t *testing.T) {
	db := demoAPI(t)
	rows, err := db.Query(`SELECT name, pop, rent, sunny FROM city WHERE name = 'Capital'`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows.At(0)
	if r[0].Any().(string) != "Capital" {
		t.Error("string conv")
	}
	if r[1].Any().(int64) != 900000 || r[1].Int() != 900000 {
		t.Error("int conv")
	}
	if r[2].Any().(float64) != 1800.0 || r[2].Float() != 1800.0 {
		t.Error("float conv")
	}
	if r[3].Any().(bool) != false || r[3].Bool() {
		t.Error("bool conv")
	}
	if r[0].IsNull() {
		t.Error("null misdetect")
	}
}

func TestPublicAPIWeightedQuery(t *testing.T) {
	db := demoAPI(t)
	scores, err := db.QueryScores(`SELECT name FROM city
		ORDER BY 0.7 * affordable(rent) + 0.3 * big(pop) LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("scores = %v", scores)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1]+1e-9 {
			t.Errorf("not ranked: %v", scores)
		}
	}
}

func TestPublicAPIExplainAndTuning(t *testing.T) {
	db := demoAPI(t)
	if _, err := db.Exec(`CREATE RANK INDEX ON city (affordable(rent))`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT name FROM city ORDER BY affordable(rent) LIMIT 1`
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "idxScan_affordable") {
		t.Errorf("rank index unused:\n%s", plan)
	}
	// Traditional tuning must avoid rank operators but agree on results.
	want, err := db.QueryScores(q)
	if err != nil {
		t.Fatal(err)
	}
	tr := ranksql.DefaultTuning()
	tr.NoRankOperators = true
	if err := db.SetTuning(tr); err != nil {
		t.Fatal(err)
	}
	plan, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "idxScan_affordable") || !strings.Contains(plan, "sort_F") {
		t.Errorf("traditional tuning still uses rank operators:\n%s", plan)
	}
	got, err := db.QueryScores(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || math.Abs(got[0]-want[0]) > 1e-9 {
		t.Errorf("traditional answer %v != %v", got, want)
	}
	if err := db.SetTuning(ranksql.Tuning{SampleRatio: 2}); err == nil {
		t.Error("invalid sample ratio accepted")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := demoAPI(t)
	if err := db.RegisterScorer("affordable", func([]ranksql.Value) float64 { return 0 }); err == nil {
		t.Error("duplicate scorer accepted")
	}
	if err := db.RegisterScorer("", func([]ranksql.Value) float64 { return 0 }); err == nil {
		t.Error("empty scorer name accepted")
	}
	if err := db.RegisterScorer("nilfn", nil); err == nil {
		t.Error("nil scorer fn accepted")
	}
	if _, err := db.Query(`INSERT INTO city VALUES (1,2,3,true)`); err == nil {
		t.Error("Query accepted non-SELECT")
	}
	if _, err := db.Exec(`SELECT * FROM city`); err == nil {
		t.Error("Exec accepted SELECT")
	}
}

func TestPublicAPITables(t *testing.T) {
	db := demoAPI(t)
	tabs := db.Tables()
	if len(tabs) != 1 || tabs[0] != "city" {
		t.Errorf("Tables = %v", tabs)
	}
}

func TestPublicAPIExecTree(t *testing.T) {
	db := demoAPI(t)
	rows, err := db.Query(`SELECT name FROM city ORDER BY affordable(rent) LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"limit(2)", "out="} {
		if !strings.Contains(rows.ExecTree(), want) {
			t.Errorf("ExecTree missing %q:\n%s", want, rows.ExecTree())
		}
	}
}

func TestPublicAPISpin(t *testing.T) {
	db := demoAPI(t)
	db.SetSpin(10) // must not change results
	rows, err := db.Query(`SELECT name FROM city ORDER BY affordable(rent) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.At(0)[0].Text() != "Ogdenville" {
		t.Error("spin changed answers")
	}
}
