// Federated demonstrates the rank-aware set operations of the algebra
// (Figure 3 of the paper) through SQL: two overlapping product catalogs
// are combined with UNION / INTERSECT / EXCEPT under one scoring
// function, and the engine merges the two ranked streams incrementally —
// no full materialization, duplicates resolved on the fly.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ranksql"
)

type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

const (
	nShared = 2000 // products listed in both stores
	nOnly   = 3000 // per-store exclusives
)

func main() {
	db := ranksql.Open()
	seed(db)

	must(db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
		return math.Max(0, 1-args[0].Float()/400)
	}, ranksql.WithCost(1)))
	must(db.RegisterScorer("fresh", func(args []ranksql.Value) float64 {
		return math.Min(1, args[0].Float()/365)
	}, ranksql.WithCost(1)))

	order := ` ORDER BY cheap(price) + fresh(days_listed) LIMIT 5`

	queries := []struct {
		title, sql string
	}{
		{"best deals across BOTH stores (UNION)",
			`SELECT sku, price, days_listed FROM alpha UNION SELECT sku, price, days_listed FROM beta` + order},
		{"best deals available in EITHER store's common stock (INTERSECT)",
			`SELECT sku, price, days_listed FROM alpha INTERSECT SELECT sku, price, days_listed FROM beta` + order},
		{"best alpha exclusives (EXCEPT)",
			`SELECT sku, price, days_listed FROM alpha EXCEPT SELECT sku, price, days_listed FROM beta` + order},
	}
	for _, q := range queries {
		fmt.Printf("== %s ==\n", q.title)
		rows, err := db.Query(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		for rows.Next() {
			r := rows.Row()
			fmt.Printf("  %-10s $%-8.2f listed %3dd  score=%.4f\n",
				r[0].Text(), r[1].Float(), r[2].Int(), rows.Score())
		}
		fmt.Printf("  (scanned %d tuples, %d predicate evals)\n\n",
			rows.Stats.TuplesScanned, rows.Stats.PredEvals)
	}

	plan, err := db.Explain(queries[0].sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== union plan ==")
	fmt.Print(plan)
}

func seed(db *ranksql.DB) {
	for _, t := range []string{"alpha", "beta"} {
		mustExec(db, fmt.Sprintf(`CREATE TABLE %s (sku TEXT, price FLOAT, days_listed INT)`, t))
	}
	r := rng(7)
	row := func(id int, tag string) string {
		return fmt.Sprintf("('%s-%05d', %.2f, %d)", tag, id, 5+r.float()*395, r.intn(365))
	}
	var shared []string
	for i := 0; i < nShared; i++ {
		shared = append(shared, row(i, "COM"))
	}
	insert := func(table string, rows []string) {
		for len(rows) > 0 {
			n := len(rows)
			if n > 500 {
				n = 500
			}
			mustExec(db, "INSERT INTO "+table+" VALUES "+strings.Join(rows[:n], ", "))
			rows = rows[n:]
		}
	}
	insert("alpha", shared)
	insert("beta", shared)
	var only []string
	for i := 0; i < nOnly; i++ {
		only = append(only, row(i, "ALP"))
	}
	insert("alpha", only)
	only = only[:0]
	for i := 0; i < nOnly; i++ {
		only = append(only, row(i, "BET"))
	}
	insert("beta", only)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *ranksql.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
