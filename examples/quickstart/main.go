// Quickstart: the smallest complete RankSQL program — create a table,
// register a scorer, run a top-k query, inspect the plan.
package main

import (
	"fmt"
	"log"

	"ranksql"
)

func main() {
	db := ranksql.Open()

	// Schema and data.
	mustExec(db, `CREATE TABLE hotel (name TEXT, price FLOAT, stars INT)`)
	mustExec(db, `INSERT INTO hotel VALUES
		('Grand',  120, 4),
		('Budget',  40, 2),
		('Plaza',   90, 4),
		('Inn',     60, 3),
		('Suites', 150, 5)`)

	// A ranking predicate: cheaper is better.
	err := db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
		return (200 - args[0].Float()) / 200
	}, ranksql.WithCost(1))
	if err != nil {
		log.Fatal(err)
	}
	// Another: more stars are better.
	err = db.RegisterScorer("starred", func(args []ranksql.Value) float64 {
		return args[0].Float() / 5
	}, ranksql.WithCost(1))
	if err != nil {
		log.Fatal(err)
	}

	// A rank index gives the optimizer a rank-scan access path.
	mustExec(db, `CREATE RANK INDEX ON hotel (cheap(price))`)

	// Top-2 hotels balancing price and stars.
	query := `SELECT name, price, stars FROM hotel
		ORDER BY cheap(price) + starred(stars) LIMIT 2`
	rows, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-2 hotels by cheap(price) + starred(stars):")
	for rows.Next() {
		r := rows.Row()
		fmt.Printf("  %-8s price=%v stars=%v score=%.3f\n",
			r[0].Text(), r[1].Any(), r[2].Any(), rows.Score())
	}

	// How was it executed?
	plan, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	fmt.Print(plan)
	fmt.Printf("\nscanned %d tuples, %d predicate evaluations\n",
		rows.Stats.TuplesScanned, rows.Stats.PredEvals)
}

func mustExec(db *ranksql.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
