// Webshop demonstrates weighted multi-criteria product ranking — the
// "searching Web databases" scenario from the paper's introduction — and
// incremental top-k: because ranking plans are pipelined, asking for more
// results costs proportionally more, not a full re-sort.
//
// It ranks products by a weighted sum of rating, popularity and price
// attractiveness, pages through results with growing LIMITs, and shows
// how the measured work grows with k while a traditional plan's work
// stays flat (and high).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ranksql"
)

type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

const nProducts = 20000

func main() {
	db := ranksql.Open()
	seed(db)

	must(db.RegisterScorer("rating", func(args []ranksql.Value) float64 {
		return args[0].Float() / 5
	}, ranksql.WithCost(1)))
	must(db.RegisterScorer("popular", func(args []ranksql.Value) float64 {
		return math.Log1p(args[0].Float()) / math.Log1p(100000)
	}, ranksql.WithCost(1)))
	must(db.RegisterScorer("bargain", func(args []ranksql.Value) float64 {
		return math.Max(0, 1-args[0].Float()/500)
	}, ranksql.WithCost(1)))

	// Rank indexes make every criterion rank-scannable.
	mustExec(db, `CREATE RANK INDEX ON product (rating(stars))`)
	mustExec(db, `CREATE RANK INDEX ON product (popular(sales))`)
	mustExec(db, `CREATE RANK INDEX ON product (bargain(price))`)

	query := func(k int) string {
		return fmt.Sprintf(`SELECT name, price, stars, sales FROM product
			WHERE in_stock
			ORDER BY 0.5 * rating(stars) + 0.3 * popular(sales) + 0.2 * bargain(price)
			LIMIT %d`, k)
	}

	fmt.Println("== plan for the weighted top-k ==")
	plan, err := db.Explain(query(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	fmt.Println("== paging through results: work grows with k ==")
	fmt.Printf("%6s %14s %14s\n", "k", "predEvals", "tuplesScanned")
	for _, k := range []int{1, 10, 100, 1000} {
		rows, err := db.Query(query(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %14d %14d\n", k, rows.Stats.PredEvals, rows.Stats.TuplesScanned)
	}

	// The traditional plan evaluates everything regardless of k.
	t := ranksql.DefaultTuning()
	t.NoRankOperators = true
	must(db.SetTuning(t))
	rows, err := db.Query(query(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %14d %14d   <- traditional plan at k=1\n", "trad",
		rows.Stats.PredEvals, rows.Stats.TuplesScanned)

	must(db.SetTuning(ranksql.DefaultTuning()))
	top, err := db.Query(query(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop products:")
	for top.Next() {
		r := top.Row()
		fmt.Printf("  %-14s $%-7.2f %v* %6d sold  score=%.4f\n",
			r[0].Text(), r[1].Float(), r[2].Any(), r[3].Int(), top.Score())
	}
}

func seed(db *ranksql.DB) {
	mustExec(db, `CREATE TABLE product (name TEXT, price FLOAT, stars FLOAT, sales INT, in_stock BOOL)`)
	r := rng(99)
	var batch []string
	flush := func() {
		if len(batch) > 0 {
			mustExec(db, "INSERT INTO product VALUES "+strings.Join(batch, ", "))
			batch = batch[:0]
		}
	}
	for i := 0; i < nProducts; i++ {
		stock := "true"
		if r.float() < 0.15 {
			stock = "false"
		}
		batch = append(batch, fmt.Sprintf("('SKU-%05d', %.2f, %.1f, %d, %s)",
			i, 5+r.float()*495, 1+4*r.float(), r.intn(100000), stock))
		if len(batch) == 500 {
			flush()
		}
	}
	flush()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *ranksql.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
