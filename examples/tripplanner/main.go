// Tripplanner reproduces Example 1 of the RankSQL paper at a realistic
// scale: Amy plans a trip — a hotel, an Italian restaurant within a
// combined budget, and a museum in the restaurant's area — ranked by
// cheap hotel price, hotel–restaurant proximity, and how well the
// museum's collection matches her dinosaur interest.
//
// The program generates a few thousand rows per table, runs the top-k
// query with the rank-aware optimizer, then reruns it with rank operators
// disabled (a traditional optimizer) and compares the work done.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"ranksql"
)

// xorshift64* PRNG so the demo is deterministic without math/rand.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

const (
	nHotels      = 3000
	nRestaurants = 3000
	nMuseums     = 1000
	nAreas       = 60
)

func main() {
	db := ranksql.Open()
	seedData(db)
	registerScorers(db)

	// Rank indexes: the optimizer can rank-scan hotels by cheapness and
	// museums by dinosaur-relatedness.
	mustExec(db, `CREATE RANK INDEX ON Hotel (cheap(price))`)
	mustExec(db, `CREATE RANK INDEX ON Museum (related(collection))`)

	query := `
		SELECT h.name, r.name, m.name
		FROM Hotel h, Restaurant r, Museum m
		WHERE r.cuisine = 'Italian' AND h.price + r.price < 100 AND r.area = m.area
		ORDER BY cheap(h.price) + close(h.addr, r.addr) + related(m.collection)
		LIMIT 5`

	fmt.Println("== rank-aware optimizer ==")
	plan, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	rows, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	printTrip(rows)

	// The same query through a traditional optimizer: every predicate is
	// evaluated on every joined row, then everything is sorted.
	if err := db.SetTuning(tuningTraditional()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== traditional optimizer (materialize-then-sort) ==")
	tRows, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same top score: %.4f vs %.4f\n", rows.Scores[0], tRows.Scores[0])
	fmt.Printf("\nwork comparison (rank-aware vs traditional):\n")
	fmt.Printf("  tuples scanned:        %8d vs %8d\n", rows.Stats.TuplesScanned, tRows.Stats.TuplesScanned)
	fmt.Printf("  predicate evaluations: %8d vs %8d\n", rows.Stats.PredEvals, tRows.Stats.PredEvals)
	fmt.Printf("  predicate cost units:  %8.0f vs %8.0f\n", rows.Stats.PredCostUnits, tRows.Stats.PredCostUnits)
}

func tuningTraditional() ranksql.Tuning {
	t := ranksql.DefaultTuning()
	t.NoRankOperators = true
	return t
}

func printTrip(rows *ranksql.Rows) {
	fmt.Println("top trips:")
	i := 0
	for rows.Next() {
		r := rows.Row()
		i++
		fmt.Printf("  %d. stay %-12s eat %-12s visit %-22s score=%.4f\n",
			i, r[0].Text(), r[1].Text(), r[2].Text(), rows.Score())
	}
}

func registerScorers(db *ranksql.DB) {
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// p1: cheap(h.price) — cheap predicate over an attribute.
	must(db.RegisterScorer("cheap", func(args []ranksql.Value) float64 {
		return math.Max(0, (120-args[0].Float())/120)
	}, ranksql.WithCost(1)))
	// p2: close(h.addr, r.addr) — a rank-JOIN predicate spanning two
	// relations (geographic proximity, modeled on a 1-D street).
	must(db.RegisterScorer("close", func(args []ranksql.Value) float64 {
		d := math.Abs(args[0].Float() - args[1].Float())
		return 1 / (1 + d/25)
	}, ranksql.WithCost(5)))
	// p3: related(m.collection, "dinosaur") — an IR-style predicate.
	must(db.RegisterScorer("related", func(args []ranksql.Value) float64 {
		text := strings.ToLower(args[0].Text())
		score := 0.05
		for _, kw := range []string{"dinosaur", "fossil", "jurassic", "paleo"} {
			if strings.Contains(text, kw) {
				score += 0.25
			}
		}
		return math.Min(1, score)
	}, ranksql.WithCost(8)))
}

func seedData(db *ranksql.DB) {
	mustExec(db, `CREATE TABLE Hotel (name TEXT, price FLOAT, addr INT)`)
	mustExec(db, `CREATE TABLE Restaurant (name TEXT, cuisine TEXT, price FLOAT, addr INT, area INT)`)
	mustExec(db, `CREATE TABLE Museum (name TEXT, collection TEXT, area INT)`)

	r := rng(2024)
	cuisines := []string{"Italian", "Chinese", "French", "Mexican", "Thai"}
	themes := []string{
		"dinosaur fossils", "impressionist paintings", "jurassic paleo exhibits",
		"modern sculpture", "city history", "dinosaur eggs", "space and robots",
		"fossil collections", "folk art",
	}

	var batch []string
	flush := func(table string) {
		if len(batch) == 0 {
			return
		}
		mustExec(db, "INSERT INTO "+table+" VALUES "+strings.Join(batch, ", "))
		batch = batch[:0]
	}
	for i := 0; i < nHotels; i++ {
		batch = append(batch, fmt.Sprintf("('Hotel-%d', %.2f, %d)",
			i, 20+r.float()*130, r.intn(1000)))
		if len(batch) == 500 {
			flush("Hotel")
		}
	}
	flush("Hotel")
	for i := 0; i < nRestaurants; i++ {
		batch = append(batch, fmt.Sprintf("('Rest-%d', '%s', %.2f, %d, %d)",
			i, cuisines[r.intn(len(cuisines))], 10+r.float()*60, r.intn(1000), r.intn(nAreas)))
		if len(batch) == 500 {
			flush("Restaurant")
		}
	}
	flush("Restaurant")
	for i := 0; i < nMuseums; i++ {
		batch = append(batch, fmt.Sprintf("('Museum-%d %s', '%s', %d)",
			i, shortTheme(themes[r.intn(len(themes))]), themes[r.intn(len(themes))], r.intn(nAreas)))
		if len(batch) == 500 {
			flush("Museum")
		}
	}
	flush("Museum")
}

func shortTheme(t string) string {
	if i := strings.IndexByte(t, ' '); i > 0 {
		return strings.Title(t[:i])
	}
	return strings.Title(t)
}

func mustExec(db *ranksql.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", firstLine(sql), err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i > 0 {
		return s[:i] + "..."
	}
	return s
}
